"""ClusterConfig, placement, and cluster-run behavior basics."""

import pytest

from repro.config import ClusterConfig, StackConfig, TenantContract
from repro.sim.shard import StreamSpec, place_block, run_cluster
from repro.units import MB


class TestClusterConfig:
    """Validation and serialization of the fleet description."""

    def test_round_trips_through_dict(self):
        cluster = ClusterConfig(
            nodes=5,
            node=StackConfig(scheduler="split-token", device="ssd"),
            node_overrides=((2, StackConfig(device="hdd")),),
            replication=2,
            block_size=8 * MB,
            chunk=1 * MB,
            link_latency=0.25e-3,
            tenants=(TenantContract("a", rate_per_node=4 * MB), TenantContract("b")),
            seed=9,
        )
        rebuilt = ClusterConfig.from_dict(cluster.to_dict())
        assert rebuilt == cluster
        assert rebuilt.node_config(2).device == "hdd"
        assert rebuilt.node_config(0).device == "ssd"
        assert rebuilt.contract("a").rate_per_node == 4 * MB
        assert rebuilt.contract("missing") is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(nodes=2, replication=3)
        with pytest.raises(ValueError):
            ClusterConfig(nodes=2, link_latency=0.0)
        with pytest.raises(ValueError):
            ClusterConfig(nodes=2, replication=1, node_overrides=((5, StackConfig()),))
        with pytest.raises(ValueError):
            ClusterConfig(
                nodes=2, replication=1,
                tenants=(TenantContract("a"), TenantContract("a")),
            )

    def test_replace(self):
        cluster = ClusterConfig(nodes=4, replication=2)
        bigger = cluster.replace(nodes=8)
        assert bigger.nodes == 8 and bigger.replication == 2
        assert cluster.nodes == 4  # frozen original untouched


class TestPlacement:
    """The pure placement function."""

    def test_is_deterministic_and_valid(self):
        a = place_block(3, 7, 11, nodes=10, replication=3)
        b = place_block(3, 7, 11, nodes=10, replication=3)
        assert a == b
        assert len(set(a)) == 3
        assert all(0 <= n < 10 for n in a)

    def test_spreads_over_blocks(self):
        placements = {
            tuple(place_block(0, 0, block, nodes=8, replication=3))
            for block in range(32)
        }
        assert len(placements) > 8  # random placement, not round-robin


class TestClusterRun:
    """End-to-end behavior of small sharded runs."""

    def test_throttled_tenant_respects_cluster_bound(self):
        cap = 4 * MB
        cluster = ClusterConfig(
            nodes=4,
            replication=2,
            block_size=4 * MB,
            tenants=(TenantContract("limited", rate_per_node=cap),),
            seed=1,
        )
        streams = [StreamSpec(i, "limited", i, 64 * MB) for i in range(4)]
        result = run_cluster(cluster, streams, duration=1.0, shards=2, processes=False)
        bound_mbps = (cap / 2) * 4 / MB
        mbps = result["tenants"]["limited"]["mbps"]
        assert 0 < mbps
        # Allow the initial token burst (one bucket cap per node).
        burst_mbps = (cap * 4 / MB) / 1.0
        assert mbps <= bound_mbps * 1.1 + burst_mbps

    def test_replication_multiplies_disk_bytes(self):
        cluster = ClusterConfig(
            nodes=4,
            replication=3,
            block_size=4 * MB,
            tenants=(TenantContract("free"),),
            seed=2,
        )
        streams = [StreamSpec(0, "free", 0, 64 * MB)]
        result = run_cluster(
            cluster, streams, duration=0.1, shards=1, drain=True,
        )
        acked = result["tenants"]["free"]["bytes"]
        disk = sum(node["bytes_written"] for node in result["per_node"].values())
        assert acked > 0
        # Every acked byte landed on all three replicas; bytes still in
        # flight at the stop may add one extra chunk per replica.
        assert disk >= 3 * acked

    def test_token_ledger_aggregates_across_nodes(self):
        cluster = ClusterConfig(
            nodes=3,
            replication=2,
            block_size=2 * MB,
            tenants=(TenantContract("limited", rate_per_node=8 * MB),),
            seed=4,
        )
        streams = [StreamSpec(0, "limited", 0, 32 * MB)]
        result = run_cluster(cluster, streams, duration=0.1, shards=3, processes=False)
        tokens = result["tenants"]["limited"]["tokens"]
        assert tokens["charged"] > 0
        assert tokens["net"] == pytest.approx(tokens["charged"] - tokens["refunded"])

    def test_meta_reports_fleet_shape(self):
        cluster = ClusterConfig(
            nodes=4, replication=2, tenants=(TenantContract("free"),), seed=0,
        )
        streams = [StreamSpec(0, "free", 0, 4 * MB)]
        result = run_cluster(cluster, streams, duration=0.02, shards=2, processes=False)
        meta = result["meta"]
        assert meta["nodes"] == 4
        assert meta["shards"] == 2
        assert meta["epochs"] > 0
        assert meta["processes"] is False
