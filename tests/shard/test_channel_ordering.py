"""Property: per-epoch delivery order is independent of push order.

The InterShardChannel's contract is that the batch a destination shard
receives for an epoch depends only on the *set* of messages, never on
which shards produced them first or how the coordinator interleaved
its drains.  These tests push the same message population in many
shuffled chunkings and demand identical delivery sequences.
"""

import random

import pytest

from repro.sim.shard import InterShardChannel, ShardMessage
from repro.sim.shard.message import canonical_order

EPOCH = 0.001


def _population(rng, count=200, epochs=5):
    """A message set with deliberate arrival-time collisions."""
    messages = []
    for i in range(count):
        epoch_index = rng.randrange(1, epochs + 1)
        # Quantized arrivals force many exact ties, exercising the
        # src/seq tie-breakers rather than float luck.
        arrival = epoch_index * EPOCH + rng.randrange(4) * (EPOCH / 4)
        messages.append(
            ShardMessage(
                arrival=arrival,
                src_node=rng.randrange(6),
                seq=i,
                dst_node=rng.randrange(6),
                kind="write_chunk",
                payload={"i": i},
            )
        )
    return messages


def _deliver_all(channel, epochs):
    """Drain every epoch window; return the flat per-epoch sequences."""
    out = []
    for k in range(epochs + 2):
        by_node = channel.due(k * EPOCH, (k + 1) * EPOCH)
        flat = [
            message
            for node in sorted(by_node)
            for message in by_node[node]
        ]
        out.append(flat)
    return out


@pytest.mark.parametrize("trial", range(5))
def test_delivery_order_independent_of_push_order(trial):
    rng = random.Random(100 + trial)
    population = _population(rng)

    reference = None
    for shuffle_seed in range(6):
        shuffled = population[:]
        random.Random(shuffle_seed).shuffle(shuffled)
        channel = InterShardChannel(EPOCH)
        # Push in ragged chunks, mimicking shards finishing an epoch in
        # arbitrary order with arbitrary outbox sizes.
        cursor = 0
        chunk_rng = random.Random(1000 + shuffle_seed)
        while cursor < len(shuffled):
            step = chunk_rng.randrange(1, 17)
            channel.push(shuffled[cursor : cursor + step])
            cursor += step
        delivered = _deliver_all(channel, epochs=5)
        if reference is None:
            reference = delivered
        else:
            assert delivered == reference
    assert sum(len(batch) for batch in reference) == len(population)


def test_within_epoch_batches_are_canonically_sorted():
    rng = random.Random(7)
    channel = InterShardChannel(EPOCH)
    channel.push(_population(rng))
    for batch in _deliver_all(channel, epochs=5):
        keys = [canonical_order(message) for message in batch]
        # Per destination node the canonical key must be monotonic.
        per_node = {}
        for message, key in zip(batch, keys):
            per_node.setdefault(message.dst_node, []).append(key)
        for node_keys in per_node.values():
            assert node_keys == sorted(node_keys)


def test_push_rejects_messages_for_released_epochs():
    channel = InterShardChannel(EPOCH)
    channel.due(0.0, EPOCH)  # epoch 0 released
    late = ShardMessage(EPOCH / 2, 0, 0, 1, "ack", {})
    with pytest.raises(RuntimeError):
        channel.push([late])


def test_pending_messages_survive_until_their_epoch():
    channel = InterShardChannel(EPOCH)
    message = ShardMessage(3.5 * EPOCH, 0, 0, 1, "ack", {})
    channel.push([message])
    assert channel.due(0.0, EPOCH) == {}
    assert channel.due(EPOCH, 2 * EPOCH) == {}
    assert channel.pending_count() == 1
    assert channel.due(3 * EPOCH, 4 * EPOCH) == {1: [message]}
    assert channel.pending_count() == 0
