"""Fault plans targeting a subset of the fleet's shards.

The campaign invariants (conservation, isolation) were written for
single-stack runs; these tests pin them down for cluster runs where
only some nodes carry a fault plan — including the case where the
faulty nodes all land in one shard and the clean nodes in another.
"""

import json

import pytest

from repro.config import ClusterConfig, StackConfig, TenantContract
from repro.faults import FaultPlan
from repro.sim.shard import StreamSpec, run_cluster
from repro.units import MB

FAULTY = StackConfig(
    scheduler="split-token",
    fault_plan=FaultPlan(write_error_prob=0.3, error_latency=0.002),
    fault_seed=5,
)


def _cluster():
    return ClusterConfig(
        nodes=6,
        replication=2,
        block_size=4 * MB,
        chunk=1 * MB,
        node_overrides=((0, FAULTY), (1, FAULTY)),
        tenants=(
            TenantContract("throttled", rate_per_node=8 * MB),
            TenantContract("free"),
        ),
        seed=29,
    )


def _streams():
    return [
        StreamSpec(i, "throttled" if i % 2 == 0 else "free", i % 6, 64 * MB)
        for i in range(6)
    ]


def _run(shards, drain=True):
    return run_cluster(
        _cluster(), _streams(), duration=0.1, shards=shards,
        processes=False, drain=drain,
    )


def test_conservation_holds_with_subset_faults():
    result = _run(shards=3)
    conservation = result["conservation"]
    assert conservation["submitted"] > 0
    assert conservation["submitted"] == conservation["completed"] + conservation["failed"]
    assert conservation["inflight"] == 0


def test_faults_confined_to_targeted_nodes():
    result = _run(shards=3)
    per_node = result["per_node"]
    # The block layer retries transient errors, so faulty nodes may
    # still complete everything — but clean nodes must never fail.
    for index in range(2, 6):
        assert per_node[index]["conservation"]["failed"] == 0
        assert per_node[index]["chunk_errors"] == 0


def test_subset_faults_layout_independent():
    def comparable(result):
        return json.dumps(
            {key: value for key, value in result.items() if key != "meta"},
            sort_keys=True,
        )

    # Shard layouts that split the faulty pair and ones that isolate it
    # must agree byte-for-byte.
    assert comparable(_run(shards=1)) == comparable(_run(shards=2))
    assert comparable(_run(shards=1)) == comparable(_run(shards=6))


def test_isolation_bound_survives_faulty_minority():
    duration = 1.0
    result = run_cluster(
        _cluster(), _streams(), duration=duration, shards=2, processes=False,
    )
    cluster = _cluster()
    bound_mbps = (8 * MB / cluster.replication) * cluster.nodes / MB
    # Token enforcement is local and unaffected by the faulty nodes'
    # retries: the throttled tenant stays under its cluster-wide bound
    # plus the initial burst (each bucket starts with one cap — a
    # second's worth of tokens — so a run of D seconds may pass
    # bound*(D+1)/D before steady-state throttling pins it).
    allowed = bound_mbps * (duration + 1.0) / duration
    assert result["tenants"]["throttled"]["mbps"] <= allowed * 1.1


def test_power_loss_plans_rejected_in_cluster_runs():
    broken = ClusterConfig(
        nodes=2,
        replication=1,
        tenants=(TenantContract("free"),),
        node_overrides=(
            (0, StackConfig(fault_plan=FaultPlan(power_loss_at=0.05))),
        ),
    )
    with pytest.raises(ValueError, match="power_loss_at"):
        run_cluster(broken, [StreamSpec(0, "free", 0, MB)], duration=0.1)
