"""Conformance tests for the reprofs frontend.

Everything here is synchronous calling code — no generators, no
``env.process`` — exercising the driver pump that bridges ordinary
Python onto the simulation.
"""

import pytest

from repro.units import KB, MB
from repro.vfs.reprofs import ReproFileSystem, strip_protocol


@pytest.fixture()
def fs():
    return ReproFileSystem(memory_bytes=64 * MB)


def test_strip_protocol_spellings():
    assert strip_protocol("repro://a/b") == "/a/b"
    assert strip_protocol("repro:/a/b") == "/a/b"
    assert strip_protocol("a/b") == "/a/b"
    assert strip_protocol("/a//b/") == "/a/b"


def test_write_read_roundtrip_bytes(fs):
    fs.pipe_file("/f", b"hello reprofs")
    assert fs.cat_file("/f") == b"hello reprofs"
    assert fs.size("/f") == len(b"hello reprofs")


def test_roundtrip_through_file_objects(fs):
    with fs.open("/f", "wb") as f:
        f.write(b"abc")
        f.write(b"defgh")
    with fs.open("/f", "rb") as f:
        assert f.read(3) == b"abc"
        assert f.tell() == 3
        assert f.read() == b"defgh"


def test_seek_and_ranges(fs):
    payload = bytes(range(256)) * 16
    fs.pipe_file("/f", payload)
    with fs.open("/f", "rb") as f:
        f.seek(100)
        assert f.read(10) == payload[100:110]
        f.seek(-16, 2)
        assert f.read() == payload[-16:]
    assert fs.cat_file("/f", start=5, end=9) == payload[5:9]
    assert fs.cat_file("/f", start=-8) == payload[-8:]
    assert fs.cat_file("/f", end=-250) == payload[:-250]


def test_cat_ranges(fs):
    fs.pipe_file("/f", b"0123456789")
    got = fs.cat_ranges(["/f", "/f"], [1, 5], [4, 10])
    assert got == [b"123", b"56789"]


def test_append_mode(fs):
    fs.pipe_file("/log", b"one,")
    with fs.open("/log", "ab") as f:
        f.write(b"two")
    assert fs.cat_file("/log") == b"one,two"


def test_truncate_on_w_mode(fs):
    fs.pipe_file("/f", b"a long original payload")
    with fs.open("/f", "wb") as f:
        f.write(b"short")
    assert fs.cat_file("/f") == b"short"


def test_exclusive_mode(fs):
    fs.pipe_file("/f", b"x")
    with pytest.raises(FileExistsError):
        fs.open("/f", "xb")


def test_text_writes_are_encoded(fs):
    with fs.open("/f", "wb") as f:
        f.write("text payload")
    assert fs.cat_file("/f") == b"text payload"


def test_ls_info_exists(fs):
    fs.makedirs("/data/sub")
    fs.pipe_file("/data/a", b"aa")
    fs.pipe_file("/data/b", b"bbbb")
    assert fs.ls("/data") == ["/data/a", "/data/b", "/data/sub"]
    detail = {e["name"]: e for e in fs.ls("/data", detail=True)}
    assert detail["/data/a"]["size"] == 2
    assert detail["/data/sub"]["type"] == "directory"
    assert fs.info("/data/b") == {"name": "/data/b", "size": 4, "type": "file"}
    assert fs.exists("/data/a") and fs.isfile("/data/a")
    assert fs.isdir("/data/sub") and not fs.isfile("/data/sub")
    assert not fs.exists("/nope")


def test_mkdir_and_makedirs(fs):
    fs.mkdir("/top")
    with pytest.raises(FileNotFoundError):
        fs.mkdir("/a/b")  # parent missing without create_parents
    fs.makedirs("/a/b/c")
    assert fs.isdir("/a/b/c")
    with pytest.raises(FileExistsError):
        fs.makedirs("/a/b/c")  # exists, exist_ok defaults to False
    fs.makedirs("/a/b/c", exist_ok=True)


def test_mv_and_cp(fs):
    fs.pipe_file("/src", b"payload")
    fs.mv("/src", "/dst")
    assert not fs.exists("/src")
    assert fs.cat_file("/dst") == b"payload"
    fs.cp_file("/dst", "/copy")
    assert fs.cat_file("/copy") == b"payload"
    assert fs.cat_file("/dst") == b"payload"


def test_rm_recursive(fs):
    fs.makedirs("/tree/deep")
    fs.pipe_file("/tree/a", b"x")
    fs.pipe_file("/tree/deep/b", b"y")
    with pytest.raises(OSError):
        fs.rm("/tree")  # non-recursive rm of a directory tree
    fs.rm("/tree", recursive=True)
    assert not fs.exists("/tree")


def test_touch_and_rm_file(fs):
    fs.touch("/f")
    assert fs.size("/f") == 0
    fs.rm_file("/f")
    assert not fs.exists("/f")


def test_flush_makes_bytes_durable(fs):
    with fs.open("/f", "wb") as f:
        f.write(b"z" * 64 * KB)
        f.flush()
        assert fs.os.cache.dirty_bytes_of(f.handle.inode.id) == 0


def test_closed_file_guards(fs):
    f = fs.open("/f", "wb")
    f.write(b"x")
    f.close()
    assert f.closed
    f.close()  # idempotent, like io objects
    with pytest.raises(ValueError):
        f.read(1)


def test_simulated_time_advances(fs):
    start = fs.env.now
    fs.pipe_file("/f", b"q" * MB)
    fs.cat_file("/f")
    assert fs.env.now > start
    assert fs.pump.episodes >= 2


def test_two_tenants_share_one_namespace_with_own_attribution():
    fs_a = ReproFileSystem(tenant="alice", memory_bytes=64 * MB)
    fs_b = ReproFileSystem(machine=fs_a.os, tenant="bob")
    fs_a.pipe_file("/shared", b"from alice")
    assert fs_b.cat_file("/shared") == b"from alice"
    assert fs_a.task.pid != fs_b.task.pid
    # Each tenant's handles carry its own cause set for the schedulers.
    ha = fs_a.open("/shared", "rb").handle
    hb = fs_b.open("/shared", "rb").handle
    assert set(ha.causes) == {fs_a.task.pid}
    assert set(hb.causes) == {fs_b.task.pid}


def test_in_sim_workload_via_open_handle_and_process():
    fs = ReproFileSystem(memory_bytes=64 * MB)
    fs.pipe_file("/f", b"\x00" * (256 * KB))
    handle = fs.open_handle("/f", mode="r")
    got = []

    def reader():
        n = yield from handle.pread(0, 128 * KB)
        got.append(n)

    fs.process(reader())
    fs.cat_file("/f")  # any pump episode drives the background reader
    assert got == [128 * KB]
