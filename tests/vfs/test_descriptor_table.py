"""Tests for the per-task descriptor table: fds, dup, EMFILE, EBADF."""

import pytest

from repro import Environment, OS, SSD, MB
from repro.schedulers import Noop
from repro.vfs import VFS


def make_os():
    env = Environment()
    machine = OS(env, device=SSD(), scheduler=Noop(), memory_bytes=128 * MB)
    return env, machine


def drive(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def test_fds_start_above_stdio():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        a = yield from machine.creat(task, "/a")
        b = yield from machine.creat(task, "/b")
        return a.fd, b.fd

    fd_a, fd_b = drive(env, proc())
    assert fd_a == 3  # 0/1/2 are reserved for stdio
    assert fd_b == 4


def test_tables_are_per_task():
    env, machine = make_os()
    t1 = machine.spawn("t1")
    t2 = machine.spawn("t2")

    def proc():
        a = yield from machine.creat(t1, "/a")
        b = yield from machine.open(t2, "/a")
        return a, b

    a, b = drive(env, proc())
    assert machine.vfs.open_count(t1) == 1
    assert machine.vfs.open_count(t2) == 1
    assert machine.vfs.handles_of(t1) == [a]
    assert machine.vfs.live_handles(a.inode.id) == 2


def test_close_twice_raises_ebadf():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from machine.close(handle)
        with pytest.raises(OSError, match="EBADF"):
            yield from machine.close(handle)

    drive(env, proc())


def test_fd_table_exhaustion_raises_emfile():
    env, machine = make_os()
    machine.vfs.max_fds = 1  # the ceiling counts open descriptors
    task = machine.spawn("t")

    def proc():
        yield from machine.creat(task, "/a")
        with pytest.raises(OSError, match="EMFILE"):
            yield from machine.creat(task, "/b")

    drive(env, proc())


def test_close_frees_table_slot():
    env, machine = make_os()
    machine.vfs.max_fds = 1
    task = machine.spawn("t")

    def proc():
        a = yield from machine.creat(task, "/a")
        yield from machine.close(a)
        b = yield from machine.creat(task, "/b")
        return b

    handle = drive(env, proc())
    assert machine.vfs.open_count(task) == 1
    assert handle.inode.path == "/b"


def test_dup_shares_the_open_file_description():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.write(8192)
        fd2 = machine.vfs.dup(handle)
        assert fd2 != handle.fd
        assert handle.refs == 2
        # Releasing one descriptor keeps the description (and cursor).
        machine.vfs.release(handle, fd=fd2)
        assert not handle.closed
        assert handle.tell() == 8192
        yield from machine.close(handle)
        assert handle.closed

    drive(env, proc())


def test_default_table_size_matches_ulimit_ballpark():
    env, machine = make_os()
    assert isinstance(machine.vfs, VFS)
    assert machine.vfs.max_fds >= 1024
