"""Tests for the VFS namespace: lookup, mkdir -p, rename, unlink."""

import pytest

from repro import Environment, OS, SSD, KB, MB
from repro.schedulers import Noop


def make_os():
    env = Environment()
    machine = OS(env, device=SSD(), scheduler=Noop(), memory_bytes=128 * MB)
    return env, machine


def drive(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def test_open_missing_file_raises():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        with pytest.raises(FileNotFoundError):
            yield from machine.open(task, "/nope")

    drive(env, proc())


def test_open_mode_r_does_not_create():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        with pytest.raises(FileNotFoundError):
            yield from machine.open(task, "/nope", mode="r")
        assert machine.fs.lookup("/nope") is None

    drive(env, proc())


def test_creat_over_existing_raises():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        yield from machine.creat(task, "/f")
        with pytest.raises(FileExistsError):
            yield from machine.creat(task, "/f")

    drive(env, proc())


def test_exclusive_open_over_existing_raises():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        yield from machine.creat(task, "/f")
        with pytest.raises(FileExistsError):
            yield from machine.open(task, "/f", mode="x")

    drive(env, proc())


def test_open_directory_raises():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        yield from machine.mkdir(task, "/d")
        with pytest.raises(IsADirectoryError):
            yield from machine.open(task, "/d")

    drive(env, proc())


def test_mkdir_parents_builds_missing_chain():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        yield from machine.mkdir(task, "/a/b/c", parents=True)
        assert machine.vfs.isdir("/a")
        assert machine.vfs.isdir("/a/b")
        assert machine.vfs.isdir("/a/b/c")
        # Idempotent on an existing directory (mkdir -p semantics).
        yield from machine.mkdir(task, "/a/b/c", parents=True)

    drive(env, proc())


def test_mkdir_without_parents_needs_existing_parent():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        with pytest.raises(FileNotFoundError):
            yield from machine.mkdir(task, "/a/b/c")

    drive(env, proc())


def test_mkdir_parents_through_file_raises():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        yield from machine.creat(task, "/a")
        with pytest.raises(NotADirectoryError):
            yield from machine.mkdir(task, "/a/b", parents=True)

    drive(env, proc())


def test_rename_moves_directory_subtree():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        yield from machine.mkdir(task, "/src/deep", parents=True)
        handle = yield from machine.creat(task, "/src/deep/f")
        yield from machine.close(handle)
        yield from machine.mkdir(task, "/dst")
        yield from machine.rename(task, "/src", "/dst/moved")
        assert machine.vfs.isfile("/dst/moved/deep/f")
        assert not machine.vfs.exists("/src")
        inode = machine.vfs.resolve("/dst/moved/deep/f")
        assert inode.path == "/dst/moved/deep/f"

    drive(env, proc())


def test_ls_and_stat():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        yield from machine.mkdir(task, "/d")
        handle = yield from machine.creat(task, "/d/f")
        yield from handle.write(8 * KB)
        yield from machine.mkdir(task, "/d/sub")
        names = yield from machine.ls(task, "/d")
        assert names == ["/d/f", "/d/sub"]
        entries = yield from machine.ls(task, "/d", detail=True)
        by_name = {e["name"]: e for e in entries}
        assert by_name["/d/f"]["type"] == "file"
        assert by_name["/d/f"]["size"] == 8 * KB
        assert by_name["/d/sub"]["type"] == "directory"
        info = yield from machine.stat(task, "/d/f")
        assert info["size"] == 8 * KB

    drive(env, proc())


def test_rmdir_requires_empty_directory():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        yield from machine.mkdir(task, "/d")
        handle = yield from machine.creat(task, "/d/f")
        yield from machine.close(handle)
        with pytest.raises(OSError):
            yield from machine.rmdir(task, "/d")
        yield from machine.unlink(task, "/d/f")
        yield from machine.rmdir(task, "/d")
        assert not machine.vfs.exists("/d")

    drive(env, proc())


def test_unlink_with_live_handle_defers_free():
    # POSIX deferred free: the name disappears immediately, but the
    # inode's pages and blocks survive until the last handle closes.
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.write(64 * KB)
        yield from handle.fsync()
        yield from machine.unlink(task, "/f")
        assert machine.fs.lookup("/f") is None  # name gone at once
        # The open handle still works against the orphaned inode.
        got = yield from handle.pread(0, 4 * KB)
        assert got == 4 * KB
        blocks_free_before = machine.fs.allocator.free_blocks
        released = yield from machine.close(handle)
        assert released
        assert machine.fs.allocator.free_blocks > blocks_free_before

    drive(env, proc())
