"""Tests for the pure path algebra under ``repro.vfs.path``."""

import pytest

from repro.vfs import path as vpath


def test_normalize_collapses_slashes_and_dots():
    assert vpath.normalize("//a///b/./c/") == "/a/b/c"


def test_normalize_root():
    assert vpath.normalize("/") == "/"
    assert vpath.normalize("///") == "/"


def test_normalize_rejects_relative():
    with pytest.raises(ValueError):
        vpath.normalize("a/b")


def test_normalize_rejects_parent_escapes():
    with pytest.raises(ValueError):
        vpath.normalize("/a/../b")


def test_components():
    assert vpath.components("/a/b/c") == ["a", "b", "c"]
    assert vpath.components("/") == []


def test_parent_and_basename():
    assert vpath.parent_of("/a/b/c") == "/a/b"
    assert vpath.parent_of("/a") == "/"
    assert vpath.basename("/a/b/c") == "c"


def test_join():
    assert vpath.join("/a/b", "c") == "/a/b/c"
    assert vpath.join("/", "c") == "/c"


def test_ancestors_root_first():
    assert list(vpath.ancestors("/a/b/c")) == ["/", "/a", "/a/b"]
    assert list(vpath.ancestors("/")) == []


def test_is_within():
    assert vpath.is_within("/a/b/c", "/a/b")
    assert vpath.is_within("/a/b", "/a/b")
    assert not vpath.is_within("/a/bc", "/a/b")
    assert vpath.is_within("/anything", "/")
