"""Integration with fsspec's registry — skipped when fsspec is absent.

The image deliberately ships without fsspec; these tests document (and
exercise, where fsspec *is* installed) the optional integration:
``register()`` exposes the simulator as ``repro://`` so unmodified
fsspec consumers can run against it.
"""

import pytest

from repro.units import MB

fsspec = pytest.importorskip("fsspec")

from repro.vfs.reprofs import fsspec_class, register  # noqa: E402


def test_fsspec_class_subclasses_abstractfilesystem():
    from fsspec import AbstractFileSystem

    cls = fsspec_class()
    assert issubclass(cls, AbstractFileSystem)
    assert cls.protocol == "repro"


def test_registered_filesystem_roundtrip():
    register(clobber=True)
    fs = fsspec.filesystem("repro", memory_bytes=64 * MB)
    fs.mkdir("repro://box")
    fs.pipe_file("repro://box/f", b"payload")
    assert fs.cat_file("repro://box/f") == b"payload"
    assert fs.ls("repro://box", detail=False) == ["/box/f"]
    with fs.open("repro://box/f", "rb") as f:
        assert f.read() == b"payload"


def test_instances_are_not_cached():
    # Each filesystem() call must build a fresh stack: cached instances
    # would silently share simulated state across experiments.
    register(clobber=True)
    a = fsspec.filesystem("repro", memory_bytes=64 * MB)
    b = fsspec.filesystem("repro", memory_bytes=64 * MB)
    assert a is not b
