"""Tests for ``OpenFile``: cursors, modes, guards, regressions."""

import pytest

from repro import Environment, OS, SSD, KB, MB
from repro.schedulers import Noop
from repro.vfs import parse_mode


def make_os():
    env = Environment()
    machine = OS(env, device=SSD(), scheduler=Noop(), memory_bytes=128 * MB)
    return env, machine


def drive(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def test_parse_mode_table():
    assert parse_mode("r").readable and not parse_mode("r").writable
    assert parse_mode("rb") == parse_mode("r")  # binary flag is a no-op
    assert parse_mode("w").truncate and parse_mode("w").create
    assert parse_mode("a").append and parse_mode("a").create
    assert parse_mode("x").exclusive and parse_mode("x").create
    assert parse_mode("r+").readable and parse_mode("r+").writable
    with pytest.raises(ValueError):
        parse_mode("q")


def test_read_write_advance_cursor():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.write(8 * KB)
        assert handle.tell() == 8 * KB
        handle.seek(0)
        got = yield from handle.read(4 * KB)
        assert got == 4 * KB
        assert handle.tell() == 4 * KB

    drive(env, proc())


def test_append_advances_cursor():
    # Regression: append() used to write at EOF but leave pos behind,
    # so a subsequent write() through the same handle clobbered the
    # just-appended record.
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/log")
        yield from handle.append(8 * KB)
        assert handle.tell() == 8 * KB
        yield from handle.append(4 * KB)
        assert handle.tell() == 12 * KB
        assert handle.size == 12 * KB

    drive(env, proc())


def test_append_mode_writes_at_eof_regardless_of_cursor():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/log", mode="a")
        yield from handle.write(8 * KB)
        handle.seek(0)
        yield from handle.write(4 * KB)  # "a": still lands at EOF
        assert handle.size == 12 * KB
        assert handle.tell() == 12 * KB

    drive(env, proc())


def test_negative_seek_rejected():
    # Regression: seek()/pread() used to accept negative offsets
    # silently, producing nonsense block numbers deep in the stack.
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.write(8 * KB)
        with pytest.raises(ValueError):
            handle.seek(-1)
        with pytest.raises(ValueError):
            handle.seek(-(16 * KB), 2)
        handle.seek(-4 * KB, 2)  # in-range relative seeks are fine
        assert handle.tell() == 4 * KB

    drive(env, proc())


def test_negative_pread_pwrite_rejected():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.write(8 * KB)
        with pytest.raises(ValueError):
            yield from handle.pread(-4096, 4096)
        with pytest.raises(ValueError):
            yield from handle.pread(0, -1)
        with pytest.raises(ValueError):
            yield from handle.pwrite(-4096, 4096)

    drive(env, proc())


def test_closed_handle_guards():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.write(4 * KB)
        yield from machine.close(handle)
        with pytest.raises(ValueError):
            yield from handle.read(4 * KB)
        with pytest.raises(ValueError):
            handle.seek(0)

    drive(env, proc())


def test_mode_guards():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f", mode="w")
        yield from handle.write(4 * KB)
        with pytest.raises(ValueError):
            yield from handle.read(4 * KB)  # not open for reading
        yield from machine.close(handle)
        reader = yield from machine.open(task, "/f", mode="r")
        with pytest.raises(ValueError):
            yield from reader.write(4 * KB)  # not open for writing

    drive(env, proc())


def test_readahead_widens_reads():
    env, machine = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.write(64 * KB)
        yield from handle.fsync()
        handle.drop_cache()
        yield from machine.close(handle)
        handle = yield from machine.open(task, "/f", readahead=16 * KB)
        before = machine.device.stats.bytes_read
        got = yield from handle.read(4 * KB)
        assert got == 4 * KB  # caller sees what it asked for...
        assert handle.tell() == 4 * KB
        mid = machine.device.stats.bytes_read
        assert mid - before >= 16 * KB  # ...the device served the window
        # The next read lands inside the prefetched window: only the
        # window's own tail (one widened page) can miss.
        got = yield from handle.read(4 * KB)
        assert got == 4 * KB
        assert machine.device.stats.bytes_read - mid <= 4 * KB

    drive(env, proc())
