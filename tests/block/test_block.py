"""Tests for block requests and the dispatch queue."""

import pytest

from repro.block import BlockQueue, BlockRequest
from repro.block.request import READ, WRITE
from repro.core.tags import CauseSet
from repro.devices import SSD
from repro.proc import ProcessTable, Task
from repro.schedulers.noop import Noop
from repro.sim import Environment
from repro.units import PAGE_SIZE


def make_stack(scheduler=None):
    env = Environment()
    table = ProcessTable()
    queue = BlockQueue(env, SSD(), scheduler or Noop(), process_table=table)
    return env, table, queue


def test_request_validates_op_and_size():
    task = Task("t")
    with pytest.raises(ValueError):
        BlockRequest("append", 0, 1, task)
    with pytest.raises(ValueError):
        BlockRequest(READ, 0, 0, task)


def test_request_defaults_causes_to_submitter():
    task = Task("t")
    request = BlockRequest(READ, 0, 1, task)
    assert request.causes == CauseSet([task.pid])


def test_request_keeps_explicit_causes():
    submitter = Task("pdflush", kernel=True)
    causes = CauseSet([101, 102])
    request = BlockRequest(WRITE, 0, 1, submitter, causes=causes)
    assert request.causes == causes
    assert request.submitter is submitter


def test_request_byte_and_block_accessors():
    request = BlockRequest(READ, 10, 4, Task("t"))
    assert request.nbytes == 4 * PAGE_SIZE
    assert request.end_block == 14
    assert request.is_read and not request.is_write


def test_submit_completes_request():
    env, table, queue = make_stack()
    task = table.spawn("reader")

    def proc():
        request = BlockRequest(READ, 0, 8, task)
        yield queue.submit(request)
        return request

    p = env.process(proc())
    env.run()
    request = p.value
    assert request.complete_time is not None
    assert request.latency > 0
    assert queue.completed == 1


def test_requests_serialize_on_device():
    env, table, queue = make_stack()
    task = table.spawn("t")
    done_times = []

    def proc():
        first = BlockRequest(READ, 0, 256, task)
        second = BlockRequest(READ, 1000, 256, task)
        e1, e2 = queue.submit(first), queue.submit(second)
        yield e1
        done_times.append(env.now)
        yield e2
        done_times.append(env.now)

    env.process(proc())
    env.run()
    assert done_times[1] > done_times[0] > 0


def test_completion_accounting_splits_among_causes():
    env, table, queue = make_stack()
    pdflush = table.spawn("pdflush", kernel=True)
    a, b = table.spawn("a"), table.spawn("b")

    def proc():
        request = BlockRequest(WRITE, 0, 2, pdflush, causes=CauseSet([a.pid, b.pid]))
        yield queue.submit(request)

    env.process(proc())
    env.run()
    assert a.bytes_written == PAGE_SIZE
    assert b.bytes_written == PAGE_SIZE
    assert pdflush.bytes_written == 0


def test_completion_listener_invoked():
    env, table, queue = make_stack()
    task = table.spawn("t")
    seen = []
    queue.completion_listeners.append(seen.append)

    def proc():
        yield queue.submit(BlockRequest(READ, 0, 1, task))

    env.process(proc())
    env.run()
    assert len(seen) == 1
    assert seen[0].is_read


def test_scheduler_sees_lifecycle():
    class Spy(Noop):
        def __init__(self):
            super().__init__()
            self.added, self.completed_reqs = [], []

        def add_request(self, request):
            self.added.append(request)
            super().add_request(request)

        def request_completed(self, request):
            self.completed_reqs.append(request)

    spy = Spy()
    env, table, queue = make_stack(spy)
    task = table.spawn("t")

    def proc():
        yield queue.submit(BlockRequest(READ, 0, 1, task))

    env.process(proc())
    env.run()
    assert len(spy.added) == 1
    assert len(spy.completed_reqs) == 1


def test_kick_wakes_idle_dispatcher():
    """A scheduler may hold requests; kick() must re-poll it."""

    class Gated(Noop):
        def __init__(self):
            super().__init__()
            self.gate_open = False

        def next_request(self):
            if not self.gate_open:
                return None
            return super().next_request()

    gated = Gated()
    env, table, queue = make_stack(gated)
    task = table.spawn("t")
    finish = []

    def proc():
        yield queue.submit(BlockRequest(READ, 0, 1, task))
        finish.append(env.now)

    def opener():
        yield env.timeout(5)
        gated.gate_open = True
        queue.kick()

    env.process(proc())
    env.process(opener())
    env.run()
    assert finish and finish[0] >= 5


def test_kick_arriving_during_poll_is_not_lost():
    """A kick() racing with next_request() must re-poll, not deadlock.

    The scheduler below kicks mid-poll while returning None — modelling
    a submit that lands while the dispatcher is already awake and has
    consumed its wake event.  Without the pending-kick flag that kick
    hits the stale (already-triggered) event and the dispatcher sleeps
    forever with a ready request queued.
    """

    class MidPollKicker(Noop):
        def __init__(self):
            super().__init__()
            self.queue = None
            self.suppress_once = True

        def next_request(self):
            if self.suppress_once and self._fifo:
                self.suppress_once = False
                self.queue.kick()  # the racing submit's kick
                return None  # pretend the request isn't visible yet
            return super().next_request()

    sched = MidPollKicker()
    env, table, queue = make_stack(sched)
    sched.queue = queue
    task = table.spawn("t")
    done = []

    def proc():
        yield queue.submit(BlockRequest(READ, 0, 1, task))
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done  # the dispatcher re-polled instead of sleeping forever
    assert queue.completed == 1


def test_accounting_skips_unknown_pids():
    """Causes can outlive their tasks (e.g. exited processes)."""
    env, table, queue = make_stack()
    submitter = table.spawn("pdflush", kernel=True)

    def proc():
        request = BlockRequest(WRITE, 0, 2, submitter, causes=CauseSet([99999]))
        yield queue.submit(request)

    env.process(proc())
    env.run()
    assert queue.completed == 1  # no crash on the unknown pid


def test_queue_counters():
    env, table, queue = make_stack()
    task = table.spawn("t")

    def proc():
        events = [queue.submit(BlockRequest(READ, i * 10, 1, task)) for i in range(5)]
        for e in events:
            yield e

    env.process(proc())
    env.run()
    assert queue.submitted == queue.completed == 5
    assert queue.in_flight is None
