"""Property tests: every elevator serves every request exactly once."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block import BlockQueue, BlockRequest
from repro.block.request import READ, WRITE
from repro.devices import SSD
from repro.proc import ProcessTable
from repro.schedulers import BlockDeadline, CFQ, Noop
from repro.sim import Environment


def elevator_factories():
    return {
        "noop": Noop,
        "cfq": CFQ,
        "deadline": BlockDeadline,
    }


request_spec = st.tuples(
    st.sampled_from([READ, WRITE]),          # op
    st.integers(min_value=0, max_value=5000),  # block
    st.integers(min_value=1, max_value=64),    # nblocks
    st.integers(min_value=0, max_value=3),     # submitter index
    st.booleans(),                             # sync
    st.floats(min_value=0, max_value=0.01),    # submit delay
)


@pytest.mark.parametrize("name", sorted(elevator_factories()))
@settings(max_examples=20, deadline=None)
@given(specs=st.lists(request_spec, min_size=1, max_size=40))
def test_all_requests_complete_exactly_once(name, specs):
    env = Environment()
    table = ProcessTable()
    tasks = [table.spawn(f"t{i}", priority=i * 2) for i in range(4)]
    queue = BlockQueue(env, SSD(), elevator_factories()[name](), process_table=table)
    completed = []
    queue.completion_listeners.append(lambda req: completed.append(req.id))

    submitted_ids = []

    def submitter():
        events = []
        for op, block, nblocks, task_index, sync, delay in specs:
            if delay:
                yield env.timeout(delay)
            request = BlockRequest(op, block, nblocks, tasks[task_index], sync=sync)
            submitted_ids.append(request.id)
            events.append(queue.submit(request))
        for event in events:
            yield event

    proc = env.process(submitter())
    env.run(until=proc)
    assert sorted(completed) == sorted(submitted_ids)
    assert len(set(completed)) == len(completed)  # exactly once
    assert not queue.scheduler.has_work()
