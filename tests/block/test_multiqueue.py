"""Multi-queue dispatch engine: slots, overlap, and accounting.

The blk-mq refactor replaced the single in-flight slot with up to
``queue_depth`` concurrent dispatch slots (capped at the device's
channel count).  These tests pin the engine's contract: SSDs overlap,
HDDs stay serial, kicks are never lost while every slot is busy, and
the per-slot counters decompose the queue-wide totals exactly.
"""

import pytest

from repro.block import BlockQueue, BlockRequest
from repro.block.request import READ
from repro.devices import HDD, SSD
from repro.faults import FaultInjector, FaultPlan, FaultyDevice
from repro.metrics.recorders import fault_summary
from repro.obs.bus import BlockDispatch
from repro.proc import ProcessTable
from repro.schedulers.noop import Noop
from repro.sim import Environment
from repro.sim.rand import RandomStreams


def make_stack(device=None, depth=1, scheduler=None):
    env = Environment()
    table = ProcessTable()
    queue = BlockQueue(
        env, device or SSD(), scheduler or Noop(),
        process_table=table, queue_depth=depth,
    )
    return env, table, queue


def run_batch(env, table, queue, nrequests, stride=64, nblocks=16):
    """Submit *nrequests* reads up front; return completion wall-clock."""
    task = table.spawn("t")

    def proc():
        events = [
            queue.submit(BlockRequest(READ, i * stride, nblocks, task))
            for i in range(nrequests)
        ]
        for e in events:
            yield e

    env.process(proc())
    env.run()
    return env.now


def test_queue_depth_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        BlockQueue(env, SSD(), Noop(), queue_depth=0)


def test_nslots_capped_by_device_channels():
    _env, _table, deep = make_stack(SSD(), depth=32)
    assert deep.queue_depth == 32
    assert deep.nslots == SSD().channels  # 32 tags, 10 channels
    _env, _table, hdd = make_stack(HDD(), depth=32)
    assert hdd.nslots == 1  # mechanical disk: one head, one slot
    _env, _table, single = make_stack(SSD(), depth=1)
    assert single.nslots == 1 and len(single.slots) == 1


def test_ssd_overlaps_at_depth_hdd_does_not():
    """Depth hides SSD access latency; an HDD is depth-invariant."""
    n = 16
    t_ssd_1 = run_batch(*make_stack(SSD(), depth=1), n)
    t_ssd_8 = run_batch(*make_stack(SSD(), depth=8), n)
    assert t_ssd_8 < t_ssd_1

    t_hdd_1 = run_batch(*make_stack(HDD(), depth=1), n)
    t_hdd_32 = run_batch(*make_stack(HDD(), depth=32), n)
    assert t_hdd_32 == t_hdd_1


def test_in_flight_is_oldest_outstanding():
    env, table, queue = make_stack(SSD(), depth=4)
    task = table.spawn("t")
    observed = []

    def proc():
        events = [queue.submit(BlockRequest(READ, i * 64, 16, task)) for i in range(8)]
        yield env.timeout(1e-6)  # mid-flight: several slots busy
        observed.append((queue.in_flight, list(queue.outstanding), queue.inflight_count))
        for e in events:
            yield e

    env.process(proc())
    env.run()
    oldest, outstanding, count = observed[0]
    assert count == len(outstanding) > 1
    assert oldest is outstanding[0]
    assert queue.in_flight is None and queue.inflight_count == 0


def test_kick_while_all_slots_busy_is_not_lost():
    """Regression: a kick landing while every slot is serving must be
    re-polled when a slot frees, not dropped with the consumed events.

    The gate hides the last request from the scheduler until every slot
    is mid-serve; the late kick() is then the only signal that it became
    visible.  A lost kick leaves the request queued forever.
    """

    class Gated(Noop):
        def __init__(self):
            super().__init__()
            self.gate_open = True
            self.hidden = None

        def next_request(self):
            request = super().next_request()
            if request is not None and not self.gate_open:
                self.hidden = request  # swallow it until the gate opens
                return None
            return request

        def open_gate(self):
            self.gate_open = True
            if self.hidden is not None:
                self._fifo.appendleft(self.hidden)
                self.hidden = None

    gated = Gated()
    env, table, queue = make_stack(SSD(), depth=4, scheduler=gated)
    task = table.spawn("t")
    done = []

    def proc():
        first = [queue.submit(BlockRequest(READ, i * 64, 64, task)) for i in range(4)]
        yield env.timeout(1e-6)
        assert all(slot.request is not None for slot in queue.slots)
        gated.gate_open = False
        late = queue.submit(BlockRequest(READ, 999, 1, task))
        gated.open_gate()
        queue.kick()  # lands while all four slots are busy
        for e in first:
            yield e
        yield late
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done and queue.completed == 5


def test_slot_counters_sum_to_queue_totals():
    env = Environment()
    table = ProcessTable()
    injector = FaultInjector(env, FaultPlan(read_error_prob=0.2), RandomStreams(3))
    device = FaultyDevice(SSD(), injector)
    queue = BlockQueue(env, device, Noop(), process_table=table, queue_depth=8)
    run_batch(env, table, queue, 40)

    assert queue.errors > 0, "fault plan should have injected errors"
    assert sum(slot.served for slot in queue.slots) == queue.completed + queue.failed
    assert sum(slot.errors for slot in queue.slots) == queue.errors
    assert sum(slot.retries for slot in queue.slots) == queue.retries
    assert sum(slot.timeouts for slot in queue.slots) == queue.timeouts
    assert sum(slot.failed for slot in queue.slots) == queue.failed
    assert sum(slot.served for slot in queue.slots if slot.index > 0) > 0, \
        "work should have spread beyond slot 0"


def test_fault_summary_slots_only_when_multi():
    env, table, single = make_stack(SSD(), depth=1)
    run_batch(env, table, single, 4)
    summary = fault_summary(single)
    assert "slots" not in summary and "queue_depth" not in summary

    env, table, multi = make_stack(SSD(), depth=4)
    run_batch(env, table, multi, 8)
    summary = fault_summary(multi)
    assert summary["queue_depth"] == 4
    assert len(summary["slots"]) == multi.nslots
    assert sum(s["served"] for s in summary["slots"]) == summary["completed"]
    assert summary["completed"] == 8  # totals unchanged by the breakdown


def test_dispatch_event_slot_attribute():
    """BlockDispatch.slot: None on a single-slot queue, an index on a
    multi-slot one — so depth-1 span files stay byte-identical."""

    def dispatch_slots(depth):
        env, table, queue = make_stack(SSD(), depth=depth)
        seen = []
        queue.bus.subscribe(BlockDispatch, lambda ev: seen.append(ev.slot))
        run_batch(env, table, queue, 6)
        return seen

    assert set(dispatch_slots(1)) == {None}
    multi = dispatch_slots(4)
    assert None not in multi
    assert len(set(multi)) > 1  # fanned across slots
