"""Hedged dispatch: racing slow attempts against a spare slot.

A fail-slow channel drags every request it serves; hedging re-issues
an attempt that exceeds the health monitor's adaptive deadline on a
free slot and lets the first completion win.  These tests pin the
race's contract: the winner completes the request exactly once at its
own finish time, the loser is cancelled, a lost race adds zero
latency, and with one slot (or no warmed-up monitor) the machinery is
provably inert.
"""

import pytest

from repro.block import BlockQueue, BlockRequest
from repro.block.request import READ
from repro.devices import SSD
from repro.devices.base import Device
from repro.health import HealthMonitor
from repro.metrics.recorders import fault_summary
from repro.proc import ProcessTable
from repro.schedulers.noop import Noop
from repro.sim import Environment

BASE = 0.001


class SkewedDevice(Device):
    """Uniform service, except channel 0 is fail-slow by *factor*."""

    def __init__(self, base=BASE, factor=20.0, channels=4):
        super().__init__(capacity_blocks=1 << 20, name="skew", channels=channels)
        self.base = base
        self.factor = factor

    def service_time(self, op, block, nblocks):
        self._check_bounds(block, nblocks)
        duration = self.base * (self.factor if self.serving_channel == 0 else 1.0)
        self._account(op, nblocks, duration)
        return duration


def make_stack(device, depth=4, hedge=True, warm_monitor=None):
    """A queue over *device*; ``warm_monitor`` pre-feeds N fast reads.

    The warmed monitor is then closed (unsubscribed from the bus) so
    its deadline stays frozen at 3x BASE: a live monitor would learn
    the slow channel's latency and adapt the deadline upward, which is
    the right production behaviour but makes timing assertions moot.
    """
    env = Environment()
    table = ProcessTable()
    queue = BlockQueue(
        env, device, Noop(), process_table=table, queue_depth=depth, hedge=hedge,
    )
    if warm_monitor:
        monitor = HealthMonitor(env, device.name, queue.bus)
        for _ in range(warm_monitor):
            monitor.observe("read", BASE)
        monitor.close()
        queue.health = monitor
    return env, table, queue


def submit_serial(env, table, queue, n, stride=64, nblocks=16):
    """One request at a time; returns each request's completion latency."""
    task = table.spawn("t")
    latencies = []

    def proc():
        for i in range(n):
            start = env.now
            yield queue.submit(BlockRequest(READ, i * stride, nblocks, task))
            latencies.append(env.now - start)

    env.process(proc())
    env.run()
    return latencies


def submit_batch(env, table, queue, n, stride=64, nblocks=16):
    """All-at-once submission; returns the last request's completion
    time (NOT env.now — a won race leaves the loser's dead timer in the
    event heap, so run-to-exhaustion overshoots the real makespan)."""
    task = table.spawn("t")
    done_at = [0.0]
    queue.completion_listeners.append(
        lambda _request: done_at.__setitem__(0, env.now)
    )

    def proc():
        events = [
            queue.submit(BlockRequest(READ, i * stride, nblocks, task))
            for i in range(n)
        ]
        for event in events:
            yield event

    env.process(proc())
    env.run()
    return done_at[0]


def test_hedge_flag_inert_at_one_slot():
    env = Environment()
    queue = BlockQueue(env, SSD(), Noop(), queue_depth=1, hedge=True)
    assert queue.hedge is False
    # And an HDD's channel cap forces one slot regardless of depth.
    from repro.devices import HDD

    queue = BlockQueue(env, HDD(), Noop(), queue_depth=32, hedge=True)
    assert queue.hedge is False


def test_no_hedging_without_warm_monitor():
    """The fallback deadline is request_timeout, which the timeout path
    preempts — so hedging waits for the monitor's first verdicts."""
    env, table, queue = make_stack(SkewedDevice(), hedge=True, warm_monitor=None)
    submit_serial(env, table, queue, 8)
    assert queue.hedges_issued == 0
    assert queue.completed == 8


def test_hedge_cuts_fail_slow_latency():
    """The sick channel's 20x service collapses to deadline + healthy."""
    unhedged_env, t1, unhedged = make_stack(SkewedDevice(), hedge=False)
    slow = submit_serial(unhedged_env, t1, unhedged, 8)
    env, table, queue = make_stack(SkewedDevice(), hedge=True, warm_monitor=32)
    fast = submit_serial(env, table, queue, 8)

    # Serial submissions land on slot 0 (the sick channel) every time.
    assert all(latency == pytest.approx(20 * BASE) for latency in slow)
    # Hedged: deadline (3x base, the monitor's p95 x margin) + a fresh
    # fast attempt on a healthy slot.
    assert all(latency == pytest.approx(4 * BASE) for latency in fast)
    assert queue.hedges_issued == 8
    assert queue.hedge_wins == 8
    assert queue.hedge_losses == 0
    assert queue.completed == 8 and queue.failed == 0


def test_lost_race_adds_zero_latency():
    """When every channel is equally fast, the primary always wins and
    the hedge machinery must not have changed completion times."""

    class Uniform(Device):
        def __init__(self):
            super().__init__(capacity_blocks=1 << 20, name="uniform", channels=4)

        def service_time(self, op, block, nblocks):
            self._check_bounds(block, nblocks)
            self._account(op, nblocks, BASE)
            return BASE

    env, table, queue = make_stack(Uniform(), hedge=True, warm_monitor=None)
    monitor = HealthMonitor(env, "uniform", queue.bus)
    for _ in range(32):
        monitor.observe("read", BASE / 10)  # deadline 3e-4 < BASE: always race
    monitor.close()  # freeze the deadline; see make_stack
    queue.health = monitor

    latencies = submit_serial(env, table, queue, 8)
    assert all(latency == pytest.approx(BASE) for latency in latencies)
    assert queue.hedges_issued == 8
    assert queue.hedge_losses == 8 and queue.hedge_wins == 0
    assert queue.completed == 8


def test_each_request_completes_exactly_once():
    env, table, queue = make_stack(SkewedDevice(), hedge=True, warm_monitor=32)
    completions = []
    queue.completion_listeners.append(completions.append)
    submit_batch(env, table, queue, 32)
    assert queue.completed == 32
    assert len(completions) == 32
    assert len({request.id for request in completions}) == 32
    assert queue.hedges_issued == queue.hedge_wins + queue.hedge_losses
    assert sum(slot.served for slot in queue.slots) == 32
    assert sum(slot.hedge_wins for slot in queue.slots) == queue.hedge_wins


def test_hedged_batch_faster_than_unhedged():
    unhedged = submit_batch(*make_stack(SkewedDevice(), hedge=False), 32)
    env, table, queue = make_stack(SkewedDevice(), hedge=True, warm_monitor=32)
    hedged = submit_batch(env, table, queue, 32)
    assert hedged < unhedged
    assert queue.hedges_issued > 0 and queue.hedge_wins > 0


def test_hedge_marks_requests_and_summary():
    env, table, queue = make_stack(SkewedDevice(), hedge=True, warm_monitor=32)
    completions = []
    queue.completion_listeners.append(completions.append)
    submit_serial(env, table, queue, 4)
    assert all(request.hedged for request in completions)
    summary = fault_summary(queue)
    assert summary["hedging"] == {"issued": 4, "wins": 4, "losses": 0}
    assert summary["health"]["device"] == "skew"
    # Per-slot breakdown: the clones ran (and won) off slot 0.
    assert sum(slot["hedges"] for slot in summary["slots"]) == 4


def test_unhedged_summary_has_no_hedging_key():
    env, table, queue = make_stack(SkewedDevice(), hedge=False)
    submit_serial(env, table, queue, 2)
    summary = fault_summary(queue)
    assert "hedging" not in summary
    assert "health" not in summary
