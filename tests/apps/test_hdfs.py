"""Tests for the HDFS-like distributed filesystem."""

import pytest

from repro import Environment, MB
from repro.apps.hdfs import HDFSCluster
from repro.metrics import ThroughputTracker
from repro.schedulers import SplitToken


def test_replication_cannot_exceed_workers():
    env = Environment()
    with pytest.raises(ValueError):
        HDFSCluster(env, workers=2, replication=3)


def test_place_block_returns_distinct_replicas():
    env = Environment()
    cluster = HDFSCluster(env, workers=5, replication=3)
    replicas = cluster.place_block()
    assert len(replicas) == 3
    assert len({node.index for node in replicas}) == 3


def test_write_replicates_three_ways():
    env = Environment()
    cluster = HDFSCluster(env, workers=4, replication=3, block_size=4 * MB)
    proc = env.process(cluster.write_file("acct", "/f", 8 * MB))
    env.run(until=proc)
    assert proc.value == 8 * MB
    # Replica files hold 3x the client bytes across the cluster.
    total_replica_bytes = sum(node.bytes_written for node in cluster.datanodes)
    assert total_replica_bytes == 3 * 8 * MB


def test_block_boundaries_create_new_placements():
    env = Environment()
    cluster = HDFSCluster(env, workers=5, replication=2, block_size=2 * MB, seed=1)
    proc = env.process(cluster.write_file("acct", "/f", 6 * MB))
    env.run(until=proc)
    # Three blocks were placed (6 MB / 2 MB).
    assert cluster._block_counter == 3


def test_account_limit_requires_token_scheduler():
    env = Environment()
    cluster = HDFSCluster(env, workers=3, replication=2)  # no scheduler
    with pytest.raises(RuntimeError):
        cluster.set_account_limit("acct", 1 * MB)


def test_throttled_account_writes_slower():
    def run(throttle):
        env = Environment()
        cluster = HDFSCluster(
            env, workers=4, replication=3, block_size=4 * MB,
            scheduler_factory=SplitToken,
        )
        if throttle:
            cluster.set_account_limit("acct", 2 * MB)
        tracker = ThroughputTracker()
        env.process(cluster.write_file("acct", "/f", 1024 * MB,
                                       duration=10.0, tracker=tracker))
        env.run(until=10.0)
        return tracker.rate(env.now)

    free_rate = run(throttle=False)
    capped_rate = run(throttle=True)
    assert capped_rate < free_rate / 2


def test_account_tasks_are_per_node_and_cached():
    env = Environment()
    cluster = HDFSCluster(env, workers=2, replication=2)
    node = cluster.datanodes[0]
    assert node.account_task("a") is node.account_task("a")
    assert node.account_task("a") is not cluster.datanodes[1].account_task("a")


def test_read_file_returns_written_bytes():
    env = Environment()
    cluster = HDFSCluster(env, workers=4, replication=2, block_size=2 * MB)
    write = env.process(cluster.write_file("acct", "/f", 5 * MB))
    env.run(until=write)

    read = env.process(cluster.read_file("acct", "/f"))
    env.run(until=read)
    assert read.value == 5 * MB


def test_read_missing_file_returns_zero():
    env = Environment()
    cluster = HDFSCluster(env, workers=3, replication=2)
    read = env.process(cluster.read_file("acct", "/ghost"))
    env.run(until=read)
    assert read.value == 0


def test_read_tracker_counts_client_bytes():
    from repro.metrics import ThroughputTracker

    env = Environment()
    cluster = HDFSCluster(env, workers=3, replication=2, block_size=2 * MB)
    write = env.process(cluster.write_file("acct", "/f", 4 * MB))
    env.run(until=write)
    tracker = ThroughputTracker()
    read = env.process(cluster.read_file("acct", "/f", tracker=tracker))
    env.run(until=read)
    assert tracker.bytes_total == 4 * MB
