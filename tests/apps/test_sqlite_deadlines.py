"""SQLite under Split-Deadline: the §7.1.1 configuration end-to-end."""


from repro import Environment, OS, HDD, MB
from repro.apps.sqlite import SQLiteDB
from repro.schedulers import SplitDeadline


def test_sqlite_with_paper_deadline_settings():
    env = Environment()
    scheduler = SplitDeadline(read_deadline=0.1, fsync_deadline=0.1)
    machine = OS(env, device=HDD(), scheduler=scheduler, memory_bytes=256 * MB)
    db = SQLiteDB(machine, table_bytes=8 * MB, checkpoint_threshold=50)
    setup = env.process(db.setup())
    env.run(until=setup)

    # Paper settings: 100 ms WAL fsyncs / table reads, 10 s checkpoints.
    scheduler.set_fsync_deadline(db.worker, 0.1)
    scheduler.set_read_deadline(db.worker, 0.1)
    scheduler.set_fsync_deadline(db.checkpoint_task, 10.0)

    bench = env.process(db.run_updates(duration=5.0))
    env.run(until=bench)
    latency = bench.value
    assert latency.count > 20
    assert db.checkpoints >= 1
    # Transactions stay in the neighbourhood of the WAL deadline even
    # with checkpoints interleaved.
    assert latency.percentile(95) < 0.3


def test_sqlite_checkpointer_uses_own_task_identity():
    """Checkpoint I/O must be separable from foreground I/O — that is
    what lets per-task deadlines differ (the paper's minor SQLite
    changes)."""
    env = Environment()
    machine = OS(env, device=HDD(), scheduler=SplitDeadline(), memory_bytes=256 * MB)
    db = SQLiteDB(machine, table_bytes=8 * MB, checkpoint_threshold=10)
    setup = env.process(db.setup())
    env.run(until=setup)
    assert db.worker.pid != db.checkpoint_task.pid

    bench = env.process(db.run_updates(duration=3.0))
    env.run(until=bench)
    if db.checkpoints:
        assert db.checkpoint_task.bytes_written > 0
