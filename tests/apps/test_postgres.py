"""Tests for the PostgreSQL-like engine and pgbench driver."""

from repro import Environment, OS, SSD, MB
from repro.apps.postgres import PgbenchResult, Postgres
from repro.schedulers import Noop


def make_pg(**kwargs):
    env = Environment()
    machine = OS(env, device=SSD(), scheduler=Noop(), memory_bytes=512 * MB)
    db = Postgres(machine, table_bytes=8 * MB, workers=2, **kwargs)
    proc = env.process(db.setup())
    env.run(until=proc)
    return env, machine, db


def test_bench_runs_transactions_on_all_workers():
    env, machine, db = make_pg(checkpoint_interval=1000)
    bench = env.process(db.run_bench(duration=2.0))
    env.run(until=bench)
    result = bench.value
    assert result.count > 20
    assert db.wal.inode.size > 0


def test_checkpointer_runs_periodically():
    env, machine, db = make_pg(checkpoint_interval=1.0)
    bench = env.process(db.run_bench(duration=4.5))
    env.run(until=bench)
    assert db.checkpoints >= 3


def test_result_statistics():
    result = PgbenchResult([0.001, 0.002, 0.1, 0.6], target=0.015)
    assert result.count == 4
    assert result.fraction_over(0.015) == 0.5
    assert result.fraction_over(0.5) == 0.25
    assert result.fraction_missing_target() == 0.5
    assert 0.001 <= result.median() <= 0.1


def test_empty_result_fractions_are_zero():
    result = PgbenchResult([], target=0.015)
    assert result.fraction_over(1.0) == 0.0
