"""Tests for QEMU-style nested stacks."""

import pytest

from repro import Environment, OS, SSD, KB, MB
from repro.apps.qemu import QemuVM
from repro.schedulers import Noop, SplitToken


def boot_vm(scheduler=None, **kwargs):
    env = Environment()
    host = OS(env, device=SSD(), scheduler=scheduler or Noop(), memory_bytes=512 * MB)
    vm = QemuVM(host, image_bytes=64 * MB, guest_memory=64 * MB, **kwargs)
    proc = env.process(vm.boot())
    env.run(until=proc)
    return env, host, vm


def test_boot_builds_guest_stack():
    env, host, vm = boot_vm()
    assert vm.guest is not None
    assert vm.image.inode.size == 64 * MB
    assert vm.guest.device.capacity_blocks == (64 * MB) // (4 * KB)


def test_spawn_requires_boot():
    env = Environment()
    host = OS(env, device=SSD(), scheduler=Noop())
    vm = QemuVM(host)
    with pytest.raises(RuntimeError):
        vm.spawn("guest-task")


def test_guest_io_flows_to_host_image():
    env, host, vm = boot_vm()
    guest_task = vm.spawn("writer")

    def proc():
        handle = yield from vm.guest.creat(guest_task, "/data")
        yield from handle.append(1 * MB)
        yield from handle.fsync()

    p = env.process(proc())
    env.run(until=p)
    # The guest fsync produced writes on the guest device, which became
    # host syscalls by the VM's host task.
    assert vm.guest.device.stats.writes > 0
    assert host.cache.dirty_bytes_of(vm.image.inode.id) > 0 or \
        host.device.stats.writes > 0


def test_guest_cache_hits_avoid_host_io():
    env, host, vm = boot_vm()
    guest_task = vm.spawn("reader")

    def proc():
        handle = yield from vm.guest.creat(guest_task, "/data")
        yield from handle.append(256 * KB)
        host_reads_before = vm.guest.device.stats.reads
        yield from handle.pread(0, 256 * KB)  # guest cache hit
        return vm.guest.device.stats.reads - host_reads_before

    p = env.process(proc())
    env.run(until=p)
    assert p.value == 0


def test_host_throttle_applies_to_whole_vm():
    scheduler = SplitToken()
    env, host, vm = boot_vm(scheduler=scheduler)
    scheduler.set_limit(vm.host_task, rate=1 * MB, cap=64 * KB)
    guest_task = vm.spawn("writer")

    def proc():
        handle = yield from vm.guest.creat(guest_task, "/data")
        start = env.now
        yield from handle.append(2 * MB)
        yield from handle.fsync()  # push through the guest to the host
        return env.now - start

    p = env.process(proc())
    env.run(until=p)
    # 2 MB through a 1 MB/s host cap: at least ~1.5 simulated seconds.
    assert p.value > 1.0


def test_file_backed_device_rejects_sync_interface():
    env, host, vm = boot_vm()
    with pytest.raises(RuntimeError):
        vm.guest.device.service_time("read", 0, 1)


def test_vm_device_accounts_io():
    env, host, vm = boot_vm()
    guest_task = vm.spawn("w")

    def proc():
        handle = yield from vm.guest.creat(guest_task, "/f")
        yield from handle.append(512 * KB)
        yield from handle.fsync()

    p = env.process(proc())
    env.run(until=p)
    stats = vm.guest.device.stats
    assert stats.bytes_written >= 512 * KB
    assert stats.busy_time > 0


def test_vm_names_are_isolated():
    env = Environment()
    host = OS(env, device=SSD(), scheduler=Noop(), memory_bytes=512 * MB)
    vm_a = QemuVM(host, name="alpha", image_bytes=64 * MB, guest_memory=32 * MB)
    vm_b = QemuVM(host, name="beta", image_bytes=64 * MB, guest_memory=32 * MB)

    def setup():
        yield from vm_a.boot()
        yield from vm_b.boot()

    p = env.process(setup())
    env.run(until=p)
    assert vm_a.image.inode.path != vm_b.image.inode.path
    task = vm_a.spawn("x")
    assert task.name.startswith("alpha/")


def test_tiny_image_rejected_with_clear_error():
    env = Environment()
    host = OS(env, device=SSD(), scheduler=Noop(), memory_bytes=128 * MB)
    with pytest.raises(ValueError, match="48 MiB"):
        QemuVM(host, image_bytes=16 * MB)
