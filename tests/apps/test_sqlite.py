"""Tests for the SQLite-like WAL database."""

from repro import Environment, OS, SSD, MB
from repro.apps.sqlite import SQLiteDB
from repro.schedulers import Noop


def make_db(**kwargs):
    env = Environment()
    machine = OS(env, device=SSD(), scheduler=Noop(), memory_bytes=512 * MB)
    db = SQLiteDB(machine, table_bytes=8 * MB, **kwargs)
    proc = env.process(db.setup())
    env.run(until=proc)
    return env, machine, db


def test_setup_creates_table_and_wal():
    env, machine, db = make_db()
    assert db.table.inode.size == 8 * MB
    assert db.wal.inode.size == 0


def test_transactions_append_to_wal_and_record_latency():
    env, machine, db = make_db()
    bench = env.process(db.run_updates(duration=2.0))
    env.run(until=bench)
    latency = bench.value
    assert latency.count > 10
    assert db.wal.inode.size == latency.count * db.wal_record
    assert all(lat > 0 for lat in latency.latencies)


def test_checkpointer_fires_at_threshold():
    env, machine, db = make_db(checkpoint_threshold=20)
    bench = env.process(db.run_updates(duration=3.0))
    env.run(until=bench)
    assert db.checkpoints >= 1
    # Checkpointing wrote table pages via its own task.
    assert db.checkpoint_task.bytes_written > 0


def test_high_threshold_defers_checkpoints():
    env, machine, db = make_db(checkpoint_threshold=10**6)
    bench = env.process(db.run_updates(duration=2.0))
    env.run(until=bench)
    assert db.checkpoints == 0
