"""Tests for pgbench's open-loop (rate-limited) mode."""

import pytest

from repro import Environment, OS, SSD, MB
from repro.apps.postgres import Postgres
from repro.schedulers import Noop


def make_pg(**kwargs):
    env = Environment()
    machine = OS(env, device=SSD(), scheduler=Noop(), memory_bytes=256 * MB)
    db = Postgres(machine, table_bytes=8 * MB, workers=2,
                  checkpoint_interval=1000, **kwargs)
    proc = env.process(db.setup())
    env.run(until=proc)
    return env, machine, db


def test_open_loop_hits_target_rate():
    env, machine, db = make_pg()
    bench = env.process(db.run_bench(4.0, rate_per_worker=50))
    env.run(until=bench)
    result = bench.value
    # 2 workers x 50 txn/s x 4 s = ~400 transactions.
    assert result.count == pytest.approx(400, rel=0.1)


def test_open_loop_latency_measured_from_schedule():
    """A stalled transaction makes the *next* ones late too."""
    env, machine, db = make_pg()

    # Stall the WAL device briefly by injecting a fat competing write.
    from repro.block.request import BlockRequest, WRITE

    def interferer():
        yield env.timeout(1.0)
        task = machine.spawn("noise")
        request = BlockRequest(WRITE, 500000, 4096, task, sync=True)
        yield machine.block_queue.submit(request)

    env.process(interferer())
    bench = env.process(db.run_bench(4.0, rate_per_worker=100))
    env.run(until=bench)
    result = bench.value
    # The 16 MB interfering write (~0.2 s on SSD) delayed a batch of
    # scheduled transactions: the tail shows it.
    assert max(result.latencies) > 0.05


def test_closed_loop_think_time_paces():
    env, machine, db = make_pg()
    bench = env.process(db.run_bench(2.0, think=0.05))
    env.run(until=bench)
    result = bench.value
    # 2 workers with ~50 ms cycles over 2 s: well under open-loop rates.
    assert result.count < 100
