"""Tests for the stride scheduler used by AFQ."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.proc import Task
from repro.schedulers.stride import STRIDE1, StrideClient, StrideScheduler


def test_client_requires_tickets():
    with pytest.raises(ValueError):
        StrideClient(1, 0)


def test_stride_inversely_proportional_to_tickets():
    few = StrideClient(1, 1)
    many = StrideClient(2, 8)
    assert few.stride == 8 * many.stride == STRIDE1


def test_charge_advances_pass():
    client = StrideClient(1, 4)
    client.charge(100)
    assert client.pass_value == pytest.approx(client.stride * 100)


def test_tickets_follow_priority_weight():
    sched = StrideScheduler()
    high = sched.client(Task("high", priority=0))
    low = sched.client(Task("low", priority=7))
    assert high.tickets == 8
    assert low.tickets == 1


def test_idle_class_gets_single_ticket():
    sched = StrideScheduler()
    idle = sched.client(Task("idle", priority=0, idle_class=True))
    assert idle.tickets == 1


def test_client_is_cached_per_task():
    sched = StrideScheduler()
    task = Task("t")
    assert sched.client(task) is sched.client(task)


def test_min_pass_pid_selects_lowest():
    sched = StrideScheduler()
    a, b = Task("a"), Task("b")
    sa, sb = sched.client(a), sched.client(b)
    sa.charge(10)
    assert sched.min_pass_pid([a.pid, b.pid]) == b.pid
    sb.charge(100)
    assert sched.min_pass_pid([a.pid, b.pid]) == a.pid


def test_min_pass_pid_empty_returns_none():
    assert StrideScheduler().min_pass_pid([]) is None


def test_reenter_catches_up_to_floor():
    """A task waking from idleness must not hoard old credit."""
    sched = StrideScheduler()
    sleeper, worker = Task("sleeper"), Task("worker")
    sched.client(sleeper)
    busy = sched.client(worker)
    busy.charge(1000)
    # With only these two, the floor is the sleeper's old pass (0); but
    # once others advance, reentry snaps to the minimum.
    state = sched.reenter(sleeper)
    assert state.pass_value == sched.floor()


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=7), st.floats(min_value=0.1, max_value=100)),
        min_size=2,
        max_size=20,
    )
)
def test_proportional_service_property(charges):
    """Serving always-min-pass clients yields service ∝ tickets."""
    sched = StrideScheduler()
    tasks = [Task(f"t{p}", priority=p) for p in range(4)]
    clients = [sched.client(t) for t in tasks]
    service = {t.pid: 0.0 for t in tasks}
    for _ in range(500):
        pid = sched.min_pass_pid([t.pid for t in tasks])
        client = sched.client_by_pid(pid)
        client.charge(1.0)
        service[pid] += 1.0
    # Shares should be close to ticket shares.
    total_tickets = sum(c.tickets for c in clients)
    for client in clients:
        expected = 500 * client.tickets / total_tickets
        assert abs(service[client.pid] - expected) <= 5


def test_floor_empty_scheduler_is_zero():
    assert StrideScheduler().floor() == 0.0


def test_min_pass_skips_unknown_pids():
    sched = StrideScheduler()
    task = Task("t")
    sched.client(task)
    assert sched.min_pass_pid([999999, task.pid]) == task.pid
    assert sched.min_pass_pid([999999]) is None


def test_client_by_pid_lookup():
    sched = StrideScheduler()
    task = Task("t")
    state = sched.client(task)
    assert sched.client_by_pid(task.pid) is state
    assert sched.client_by_pid(424242) is None
