"""Tests for Split-Token: two-stage accounting and split throttling."""

import pytest

from repro import Environment, OS, SSD, HDD, KB, MB
from repro.schedulers import SplitToken
from repro.workloads import prefill_file


def make_os(device=None, **kwargs):
    env = Environment()
    scheduler = SplitToken()
    machine = OS(env, device=device or SSD(), scheduler=scheduler,
                 memory_bytes=kwargs.pop("memory_bytes", 512 * MB), **kwargs)
    return env, machine, scheduler


def drive(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def test_prompt_charge_on_buffer_dirty():
    env, machine, scheduler = make_os()
    task = machine.spawn("w")
    bucket = scheduler.set_limit(task, rate=1 * MB)

    def proc():
        handle = yield from machine.creat(task, "/f")
        before = bucket.charged_total
        yield from handle.append(64 * KB)
        return bucket.charged_total - before

    charged = drive(env, proc())
    assert charged >= 64 * KB  # charged promptly, at dirty time


def test_overwrite_of_dirty_buffer_is_free():
    """The 837x 'write-mem' advantage: already-dirty data costs nothing."""
    env, machine, scheduler = make_os()
    task = machine.spawn("w")
    bucket = scheduler.set_limit(task, rate=1 * MB)

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.pwrite(0, 64 * KB)
        before = bucket.charged_total
        for _ in range(10):
            yield from handle.pwrite(0, 64 * KB)
        return bucket.charged_total - before

    charged = drive(env, proc())
    assert charged == 0


def test_syscall_reads_never_throttled():
    env, machine, scheduler = make_os()
    task = machine.spawn("r")
    scheduler.set_limit(task, rate=1024)  # 1 KB/s: absurdly tight

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(1 * MB)
        start = env.now
        yield from handle.pread(0, 1 * MB)  # all cached
        return env.now - start

    elapsed = drive(env, proc())
    assert elapsed < 0.01  # cache reads bypass the throttle entirely


def test_block_reads_held_while_balance_negative():
    env, machine, scheduler = make_os(device=HDD())
    setup = machine.spawn("setup")
    task = machine.spawn("r")

    def proc():
        yield from prefill_file(machine, setup, "/big", 8 * MB)
        bucket = scheduler.set_limit(task, rate=1 * MB, cap=4 * KB)
        bucket.charge(2 * MB)  # deep in debt
        handle = yield from machine.open(task, "/big")
        start = env.now
        yield from handle.pread(0, 4 * KB)
        return env.now - start

    elapsed = drive(env, proc())
    # Must wait ~2 s for the balance to recover before the disk read.
    assert elapsed > 1.5


def test_buffer_free_refunds_estimate():
    env, machine, scheduler = make_os()
    task = machine.spawn("w")
    bucket = scheduler.set_limit(task, rate=1 * MB)

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(256 * KB)
        yield from machine.close(handle)  # unlink with no live handles frees
        mid = bucket.balance
        yield from machine.unlink(task, "/f")  # work disappears
        return mid, bucket.balance

    mid, after = drive(env, proc())
    assert after > mid  # refunded


def test_block_level_revision_charges_amplification():
    """Random writes cost more at flush time than their bytes."""
    env, machine, scheduler = make_os(device=HDD())
    import random

    rng = random.Random(0)
    setup = machine.spawn("setup")
    task = machine.spawn("w")

    def proc():
        yield from prefill_file(machine, setup, "/f", 32 * MB)
        bucket = scheduler.set_limit(task, rate=100 * MB)
        handle = yield from machine.open(task, "/f")
        for _ in range(64):
            offset = rng.randrange(0, 8192) * 4 * KB
            yield from handle.pwrite(offset, 4 * KB)
        charged_at_dirty = bucket.charged_total
        yield from handle.fsync()  # flush: the disk model revises
        return charged_at_dirty, bucket.charged_total

    prompt, final = drive(env, proc())
    assert final > prompt  # revision charged extra for the seeks


def test_shared_bucket_throttles_group():
    env, machine, scheduler = make_os()
    tasks = [machine.spawn(f"w{i}") for i in range(4)]
    scheduler.set_limit(tasks, rate=1 * MB, cap=64 * KB)

    def writer(task, path):
        handle = yield from machine.creat(task, path)
        written = 0
        while written < 1 * MB:
            written += yield from handle.append(64 * KB)
        return env.now

    procs = [env.process(writer(task, f"/f{i}")) for i, task in enumerate(tasks)]
    for proc in procs:
        env.run(until=proc) if not proc.triggered else None
    # 4 MB total through a 1 MB/s shared bucket: ~4 seconds.
    assert env.now == pytest.approx(4.0, rel=0.3)


def test_read_dispatch_charges_nominal_before_completion():
    """Held reads must not burst out together when the balance recovers:
    each dispatch immediately debits the account."""
    env, machine, scheduler = make_os(device=HDD())
    setup = machine.spawn("setup")
    task = machine.spawn("r")

    def proc():
        yield from prefill_file(machine, setup, "/big", 8 * MB)
        bucket = scheduler.set_limit(task, rate=64 * KB, cap=4 * KB)
        bucket.charge(bucket.balance + 1)  # slightly negative
        handle = yield from machine.open(task, "/big")
        times = []
        for i in range(3):
            start = env.now
            yield from handle.pread(i * 1 * MB, 4 * KB)
            times.append(env.now - start)
        return times

    times = drive(env, proc())
    # Each subsequent read had to wait for tokens again (~64 KB/s of
    # normalized budget vs multi-hundred-KB actual costs): no burst.
    assert times[1] > 0.5
    assert times[2] > 0.5


def test_ablation_flags_disable_stages():
    from repro.schedulers.split_token import SplitToken

    no_prompt = SplitToken(prompt_charging=False)
    assert not no_prompt.prompt_charging and no_prompt.block_revision
    no_rev = SplitToken(block_revision=False)
    assert no_rev.prompt_charging and not no_rev.block_revision
