"""Additional CFQ behaviours: idle-only service, slice rotation."""

from repro.block import BlockQueue, BlockRequest
from repro.block.request import READ
from repro.devices import HDD, SSD
from repro.proc import ProcessTable
from repro.schedulers.cfq import CFQ
from repro.sim import Environment


def make_stack(scheduler, device=None):
    env = Environment()
    table = ProcessTable()
    queue = BlockQueue(env, device or SSD(), scheduler, process_table=table)
    return env, table, queue


def test_idle_class_served_when_alone():
    """Idle tasks do get the disk when nobody else wants it."""
    cfq = CFQ()
    env, table, queue = make_stack(cfq)
    idle = table.spawn("idle", idle_class=True)
    done = []

    def proc():
        yield queue.submit(BlockRequest(READ, 0, 1, idle))
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done and done[0] < 1.0


def test_slices_rotate_across_queues():
    """With several active queues, each eventually gets service."""
    cfq = CFQ(base_slice=0.01)
    env, table, queue = make_stack(cfq, device=HDD())
    served = set()
    queue.completion_listeners.append(lambda req: served.add(req.submitter.name))

    def worker(task, base):
        for i in range(4):
            yield queue.submit(BlockRequest(READ, base + i * 100, 64, task, sync=True))

    for name in ("a", "b", "c"):
        task = table.spawn(name)
        env.process(worker(task, hash(name) % 100000))
    env.run()
    assert served == {"a", "b", "c"}


def test_disk_time_accounting_accumulates():
    cfq = CFQ()
    env, table, queue = make_stack(cfq, device=HDD())
    task = table.spawn("t")

    def proc():
        yield queue.submit(BlockRequest(READ, 0, 2048, task))

    env.process(proc())
    env.run()
    assert cfq.disk_time[task.pid] > 0.05  # 8 MB on an HDD


def test_higher_priority_gets_more_disk_time_under_contention():
    cfq = CFQ(base_slice=0.05)
    env, table, queue = make_stack(cfq, device=HDD())
    high = table.spawn("high", priority=0)
    low = table.spawn("low", priority=7)

    def stream(task, base):
        # Keep a deep backlog queued so slices are always contested.
        events = [
            queue.submit(BlockRequest(READ, base + i * 256, 256, task, sync=True))
            for i in range(100)
        ]
        for event in events:
            yield event

    env.process(stream(high, 0))
    env.process(stream(low, 60_000))
    # Measure mid-contention, before either backlog drains.
    env.run(until=0.8)
    assert cfq.disk_time[high.pid] > 1.5 * cfq.disk_time.get(low.pid, 1e-9)
