"""Tests for the no-op schedulers and hook accounting."""

from repro import Environment, OS, SSD, KB, MB
from repro.schedulers import Noop, SplitNoop


def test_noop_is_fifo():
    from repro.block.request import BlockRequest, READ
    from repro.proc import Task

    noop = Noop()
    task = Task("t")
    first = BlockRequest(READ, 10, 1, task)
    second = BlockRequest(READ, 0, 1, task)
    noop.add_request(first)
    noop.add_request(second)
    assert noop.has_work()
    assert noop.next_request() is first
    assert noop.next_request() is second
    assert noop.next_request() is None
    assert not noop.has_work()


def test_split_noop_counts_hook_invocations():
    env = Environment()
    machine = OS(env, device=SSD(), scheduler=SplitNoop(), memory_bytes=64 * MB)
    scheduler = machine.scheduler
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(16 * KB)
        yield from handle.fsync()
        yield from handle.pread(0, 16 * KB)

    p = env.process(proc())
    env.run(until=p)
    # Syscall, memory, and block hooks all fired.
    assert scheduler.hook_invocations > 10


def test_split_noop_behaves_like_noop():
    """Same workload, same simulated completion time (Figure 9's claim)."""

    def run(scheduler):
        env = Environment()
        machine = OS(env, device=SSD(), scheduler=scheduler, memory_bytes=64 * MB)
        task = machine.spawn("t")

        def proc():
            handle = yield from machine.creat(task, "/f")
            for _ in range(16):
                yield from handle.append(64 * KB)
            yield from handle.fsync()
            return env.now

        p = env.process(proc())
        env.run(until=p)
        return p.value

    assert run(Noop()) == run(SplitNoop())
