"""Tests for token buckets and the bucket registry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.proc import Task
from repro.schedulers.tokens import BucketRegistry, TokenBucket
from repro.sim import Environment


def test_rate_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        TokenBucket(env, rate=0)


def test_bucket_starts_full():
    env = Environment()
    bucket = TokenBucket(env, rate=100, cap=500)
    assert bucket.balance == 500


def test_charge_can_go_negative():
    env = Environment()
    bucket = TokenBucket(env, rate=100, cap=100)
    bucket.charge(250)
    assert bucket.balance == -150


def test_accrual_over_time():
    env = Environment()
    bucket = TokenBucket(env, rate=10, cap=100)
    bucket.charge(100)
    env.run(until=5)
    assert bucket.balance == pytest.approx(50)


def test_accrual_capped():
    env = Environment()
    bucket = TokenBucket(env, rate=10, cap=100)
    env.run(until=1000)
    assert bucket.balance == 100


def test_refund_capped():
    env = Environment()
    bucket = TokenBucket(env, rate=10, cap=100)
    bucket.refund(1000)
    assert bucket.balance == 100


def test_time_until_level():
    env = Environment()
    bucket = TokenBucket(env, rate=10, cap=100)
    bucket.charge(150)  # balance -50
    assert bucket.time_until(0.0) == pytest.approx(5.0)
    assert bucket.time_until(-100) == 0.0


def test_charged_total_tracks_positive_charges():
    env = Environment()
    bucket = TokenBucket(env, rate=10)
    bucket.charge(5)
    bucket.charge(7)
    assert bucket.charged_total == 12


def test_registry_shared_bucket():
    env = Environment()
    registry = BucketRegistry(env)
    a, b = Task("a"), Task("b")
    bucket = registry.set_limit([a, b], rate=100)
    assert registry.bucket_for(a) is bucket
    assert registry.bucket_for(b) is bucket


def test_registry_single_task():
    env = Environment()
    registry = BucketRegistry(env)
    task = Task("t")
    bucket = registry.set_limit(task, rate=10)
    assert registry.bucket_for(task) is bucket
    assert registry.bucket_for(Task("other")) is None


def test_buckets_for_causes():
    from repro.core.tags import CauseSet

    env = Environment()
    registry = BucketRegistry(env)
    a, b = Task("a"), Task("b")
    bucket = registry.set_limit(a, rate=10)
    found = registry.buckets_for_causes(CauseSet([a.pid, b.pid]))
    assert found == {a.pid: bucket}


@given(st.lists(st.floats(min_value=0.1, max_value=1000), min_size=1, max_size=30))
def test_balance_never_exceeds_cap(charges):
    env = Environment()
    bucket = TokenBucket(env, rate=50, cap=200)
    for amount in charges:
        bucket.charge(amount)
        bucket.refund(amount)
        assert bucket.balance <= 200
