"""Unit tests for AFQ's split-level mechanics."""


from repro import Environment, OS, SSD, HDD, KB, MB
from repro.schedulers import AFQ


def make_os(device=None, **afq_kwargs):
    env = Environment()
    scheduler = AFQ(**afq_kwargs)
    machine = OS(env, device=device or SSD(), scheduler=scheduler, memory_bytes=512 * MB)
    return env, machine, scheduler


def drive(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def test_reads_not_parked_at_syscall_level():
    env, machine, afq = make_os()
    task = machine.spawn("r")
    assert afq.syscall_entry(task, "read", {}) is None


def test_write_parks_and_is_admitted():
    env, machine, afq = make_os()
    task = machine.spawn("w")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(64 * KB)
        return handle.inode.size

    assert drive(env, proc()) == 64 * KB


def test_write_window_blocks_until_drained():
    env, machine, afq = make_os(write_window=1 * MB)
    task = machine.spawn("w")

    def proc():
        handle = yield from machine.creat(task, "/f")
        start = env.now
        # 8 x 1 MB through a 1 MB window: must wait for drains between.
        for _ in range(8):
            yield from handle.append(1 * MB)
        return env.now - start

    elapsed = drive(env, proc())
    assert elapsed > 0.01  # had to wait for the window
    assert machine.writeback.pages_flushed > 0


def test_fsync_slots_serialize_fsyncs():
    env, machine, afq = make_os(fsync_slots=1)
    a, b = machine.spawn("a"), machine.spawn("b")
    finished = []

    def syncer(task, path):
        handle = yield from machine.creat(task, path)
        yield from handle.append(4 * KB)
        yield from handle.fsync()
        finished.append((task.name, env.now))

    env.process(syncer(a, "/fa"))
    env.process(syncer(b, "/fb"))
    env.run(until=30.0)
    assert len(finished) == 2
    assert finished[0][1] < finished[1][1]  # strictly ordered


def test_block_writes_dispatch_before_reads():
    """Beneath the journal, writes must not be held (priority inversion)."""
    afq = AFQ()
    env = Environment()
    machine = OS(env, device=HDD(), scheduler=afq)
    task = machine.spawn("t")
    from repro.block.request import BlockRequest, READ, WRITE

    order = []
    machine.block_queue.completion_listeners.append(lambda r: order.append(r.op))

    def proc():
        # Occupy the device, then queue one read and one write.
        first = machine.block_queue.submit(BlockRequest(READ, 0, 2048, task))
        yield env.timeout(0.001)
        e_read = machine.block_queue.submit(BlockRequest(READ, 5000, 1, task))
        e_write = machine.block_queue.submit(BlockRequest(WRITE, 9000, 1, task))
        yield first
        yield e_read
        yield e_write

    drive(env, proc())
    assert order[1] == "write"


def test_completion_charges_true_causes_not_submitter():
    env, machine, afq = make_os()
    app = machine.spawn("app")
    from repro.block.request import BlockRequest, WRITE
    from repro.core.tags import CauseSet

    pdflush = machine.writeback.task

    def proc():
        request = BlockRequest(
            WRITE, 0, 8, pdflush, causes=CauseSet([app.pid])
        )
        yield machine.block_queue.submit(request)

    drive(env, proc())
    state = afq.stride.client_by_pid(app.pid)
    assert state is not None and state.pass_value > 0
    assert afq.stride.client_by_pid(pdflush.pid) is None  # proxy not charged


def test_idle_task_blocked_while_system_busy():
    env, machine, afq = make_os()
    busy = machine.spawn("busy")
    idle = machine.spawn("idle", idle_class=True)
    progress = []

    def busy_writer():
        handle = yield from machine.creat(busy, "/busy")
        for _ in range(50):
            yield from handle.append(64 * KB)
            yield env.timeout(0.001)

    def idle_writer():
        handle = yield from machine.creat(idle, "/idle")
        for i in range(5):
            yield from handle.append(4 * KB)
            progress.append(env.now)

    env.process(busy_writer())
    env.process(idle_writer())
    env.run(until=0.04)
    early_progress = len(progress)
    # The busy writer finishes; idle proceeds in the quiet period.
    env.run(until=5.0)
    assert len(progress) == 5
    assert early_progress < 5  # it was being held while busy ran


def test_stride_pacing_limits_burst_ahead_of_floor():
    env, machine, afq = make_os(write_window=256 * MB, burst_per_ticket=64 * KB)
    fast = machine.spawn("fast", priority=0)
    slow = machine.spawn("slow", priority=7)
    written = {"fast": 0, "slow": 0}

    def writer(task, key):
        handle = yield from machine.creat(task, f"/{key}")
        while env.now < 0.3:
            n = yield from handle.append(64 * KB)
            written[key] += n

    env.process(writer(fast, "fast"))
    env.process(writer(slow, "slow"))
    env.run(until=0.3)
    # Both progressed, at roughly ticket-proportional (8:1) rates.
    assert written["slow"] > 0
    ratio = written["fast"] / written["slow"]
    assert 4 < ratio < 16


def test_floor_client_can_issue_oversized_write():
    """A write larger than a client's entire burst allowance must not
    deadlock it (work conservation: the floor client always runs)."""
    env, machine, afq = make_os(burst_per_ticket=64 * KB)
    low = machine.spawn("low", priority=7)  # 1 ticket: 64 KB allowance

    def proc():
        handle = yield from machine.creat(low, "/f")
        # 4 MB >> the 64 KB allowance; must still complete.
        yield from handle.pwrite(0, 4 * MB)
        return handle.inode.size

    assert drive(env, proc()) == 4 * MB


def test_memory_overwriters_run_at_memory_speed():
    """Figure 11(d): no disk contention, so nobody should be paced."""
    env, machine, afq = make_os()
    from repro.workloads import sequential_overwriter
    from repro.metrics import ThroughputTracker

    trackers = []
    for prio in range(4):
        task = machine.spawn(f"m{prio}", priority=prio)
        tracker = ThroughputTracker()
        trackers.append(tracker)
        env.process(
            sequential_overwriter(machine, task, f"/m{prio}", 0.5, region=2 * MB,
                                  tracker=tracker)
        )
    env.run(until=0.5)
    total = sum(t.rate(0.5) for t in trackers) / MB
    assert total > 1000  # memory speed, not disk speed (~110 MB/s)
