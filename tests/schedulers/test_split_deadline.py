"""Unit tests for Split-Deadline's fsync scheduling."""


from repro import Environment, OS, SSD, HDD, KB, MB
from repro.schedulers import SplitDeadline


def make_os(device=None, writeback_enabled=True, **kwargs):
    env = Environment()
    scheduler = SplitDeadline(**kwargs)
    machine = OS(
        env, device=device or SSD(), scheduler=scheduler,
        memory_bytes=512 * MB, writeback_enabled=writeback_enabled,
    )
    return env, machine, scheduler


def drive(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def test_small_fsync_issues_immediately_when_quiet():
    env, machine, sched = make_os(fsync_deadline=1.0)
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(4 * KB)
        start = env.now
        yield from handle.fsync()
        return env.now - start

    latency = drive(env, proc())
    assert latency < 0.1  # far below the 1 s deadline: no pointless delay


def test_big_fsync_is_deferred_and_drained():
    env, machine, sched = make_os(big_fsync_threshold=256 * KB)
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(8 * MB)
        yield from handle.fsync()
        return machine.cache.dirty_bytes_of(handle.inode.id)

    remaining = drive(env, proc())
    assert sched.fsyncs_deferred == 1
    assert remaining == 0  # durable nonetheless


def test_small_fsyncs_wait_while_big_drain_active():
    env, machine, sched = make_os(
        device=HDD(), big_fsync_threshold=256 * KB, fsync_deadline=0.2
    )
    big, small = machine.spawn("big"), machine.spawn("small")
    sched.set_fsync_deadline(small, 0.2)
    sched.set_fsync_deadline(big, 10.0)
    latencies = []

    def big_proc():
        handle = yield from machine.creat(big, "/big")
        yield from handle.append(16 * MB)
        yield from handle.fsync()

    def small_proc():
        handle = yield from machine.creat(small, "/small")
        yield env.timeout(0.05)  # during the drain
        yield from handle.append(4 * KB)
        start = env.now
        yield from handle.fsync()
        latencies.append(env.now - start)

    env.process(big_proc())
    env.process(small_proc())
    env.run(until=30.0)
    # The small fsync completed within (roughly) its deadline even
    # while the 16 MB drain was in flight.
    assert latencies and latencies[0] < 0.5


def test_per_task_deadlines():
    env, machine, sched = make_os()
    a, b = machine.spawn("a"), machine.spawn("b")
    sched.set_fsync_deadline(a, 0.01)
    sched.set_read_deadline(b, 0.123)
    assert sched.fsync_deadline_for(a) == 0.01
    assert sched.fsync_deadline_for(b) == sched.fsync_deadline
    assert sched.read_deadline_for(b) == 0.123


def test_own_writeback_flushes_without_pdflush():
    env, machine, sched = make_os(own_writeback=True, writeback_enabled=False)
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(16 * MB)  # over the 8 MB low water
        yield env.timeout(5.0)
        return machine.cache.dirty_bytes

    remaining = drive(env, proc())
    assert remaining < 16 * MB  # the scheduler's own flusher worked


def test_dirty_cap_throttles_writers_in_pdflush_mode():
    env, machine, sched = make_os(dirty_cap=1 * MB)
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        start = env.now
        for _ in range(8):
            yield from handle.append(1 * MB)
        return env.now - start

    elapsed = drive(env, proc())
    assert elapsed > 0.01  # writes blocked at the cap, waiting on flush


def test_block_level_sync_writes_before_async():
    env, machine, sched = make_os(device=HDD())
    task = machine.spawn("t")
    from repro.block.request import BlockRequest, READ, WRITE

    order = []
    machine.block_queue.completion_listeners.append(
        lambda r: order.append((r.op, r.sync))
    )

    def proc():
        first = machine.block_queue.submit(BlockRequest(READ, 0, 2048, task))
        yield env.timeout(0.001)
        e_async = machine.block_queue.submit(BlockRequest(WRITE, 5000, 1, task, sync=False))
        e_sync = machine.block_queue.submit(BlockRequest(WRITE, 9000, 1, task, sync=True))
        yield first
        yield e_async
        yield e_sync

    drive(env, proc())
    assert order[1] == (WRITE, True)
    assert order[2] == (WRITE, False)


def test_expired_read_preempts_sync_writes():
    env, machine, sched = make_os(device=HDD(), read_deadline=0.001)
    task = machine.spawn("t")
    from repro.block.request import BlockRequest, READ, WRITE

    order = []
    machine.block_queue.completion_listeners.append(lambda r: order.append(r.op))

    def proc():
        first = machine.block_queue.submit(BlockRequest(WRITE, 0, 2048, task, sync=True))
        yield env.timeout(0.01)
        e_read = machine.block_queue.submit(BlockRequest(READ, 5000, 1, task))
        yield env.timeout(0.05)  # the read's 1 ms deadline expires
        e_write = machine.block_queue.submit(BlockRequest(WRITE, 9000, 1, task, sync=True))
        yield first
        yield e_read
        yield e_write

    drive(env, proc())
    assert order[1] == READ


def test_deadline_imminent_considers_read_fifo_and_fsyncs():
    env, machine, sched = make_os(device=HDD())
    task = machine.spawn("t")
    assert not sched._deadline_imminent()
    # A registered fsync deadline within the margin flips it.
    sched._active_fsyncs[task.pid] = env.now + 0.01
    assert sched._deadline_imminent(margin=0.05)
    sched._active_fsyncs[task.pid] = env.now + 10.0
    assert not sched._deadline_imminent(margin=0.05)


def test_flush_estimate_scales_with_dirty_bytes():
    env, machine, sched = make_os()
    small = sched._flush_estimate(1 * MB)
    big = sched._flush_estimate(64 * MB)
    assert big > small > sched.commit_overhead


def test_own_writeback_flushes_aged_data_below_low_water():
    env, machine, sched = make_os(own_writeback=True, writeback_enabled=False)
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(1 * MB)  # tiny: below the low-water mark
        yield env.timeout(8.0)  # but it ages past 5 s
        return machine.cache.dirty_bytes

    assert drive(env, proc()) == 0
