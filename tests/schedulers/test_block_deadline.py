"""Tests for the Block-Deadline elevator."""

from repro.block import BlockQueue, BlockRequest
from repro.block.request import READ, WRITE
from repro.devices import SSD, HDD
from repro.proc import ProcessTable
from repro.schedulers.block_deadline import BlockDeadline
from repro.sim import Environment


def make_stack(scheduler, device=None):
    env = Environment()
    table = ProcessTable()
    queue = BlockQueue(env, device or SSD(), scheduler, process_table=table)
    return env, table, queue


def test_location_order_when_no_deadline_pressure():
    sched = BlockDeadline(read_deadline=100, write_deadline=100)
    env, table, queue = make_stack(sched, device=HDD())
    task = table.spawn("t")
    order = []
    queue.completion_listeners.append(lambda req: order.append(req.block))

    def proc():
        blocks = [5000, 100, 3000, 200]
        events = [queue.submit(BlockRequest(READ, b, 1, task)) for b in blocks]
        for e in events:
            yield e

    env.process(proc())
    env.run()
    # After the first dispatch (FIFO head), the rest follow C-SCAN order.
    assert order[1:] == sorted(order[1:])


def test_expired_request_preempts_sorted_order():
    sched = BlockDeadline(read_deadline=0.01, write_deadline=100)
    env, table, queue = make_stack(sched, device=HDD())
    task = table.spawn("t")
    order = []
    queue.completion_listeners.append(lambda req: order.append((req.op, req.block)))

    def proc():
        # A slow write keeps the device busy while the read expires.
        first = queue.submit(BlockRequest(WRITE, 0, 2048, task))
        yield env.timeout(0.001)  # let the dispatcher pick up the write
        e1 = queue.submit(BlockRequest(READ, 900000, 1, task))
        e2 = queue.submit(BlockRequest(WRITE, 10000, 1, task))
        yield first
        yield e1
        yield e2

    env.process(proc())
    env.run()
    # The read expired during the initial write, so it is served before
    # the write that is closer to the head.
    assert order[1] == (READ, 900000)
    assert sched.expired_served >= 1


def test_per_process_deadline_override():
    sched = BlockDeadline(read_deadline=10.0)
    env, table, queue = make_stack(sched)
    urgent, normal = table.spawn("urgent"), table.spawn("normal")
    sched.set_deadline(urgent, READ, 0.001)
    assert sched.deadline_for(urgent, READ) == 0.001
    assert sched.deadline_for(normal, READ) == 10.0


def test_writes_not_starved_forever():
    sched = BlockDeadline(read_deadline=100, write_deadline=100, writes_starved=2)
    env, table, queue = make_stack(sched, device=HDD())
    task = table.spawn("t")
    order = []
    queue.completion_listeners.append(lambda req: order.append(req.op))

    def proc():
        events = []
        for i in range(6):
            events.append(queue.submit(BlockRequest(READ, i * 100, 1, task)))
        events.append(queue.submit(BlockRequest(WRITE, 50000, 1, task)))
        for e in events:
            yield e

    env.process(proc())
    env.run()
    # The write is served before the read stream fully drains.
    assert WRITE in order[:-1]


def test_has_work_reflects_queues():
    sched = BlockDeadline()
    env, table, queue = make_stack(sched)
    task = table.spawn("t")
    assert not sched.has_work()

    def proc():
        yield queue.submit(BlockRequest(READ, 0, 1, task))

    env.process(proc())
    env.run()
    assert not sched.has_work()
