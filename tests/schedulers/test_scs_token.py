"""Tests for SCS-Token: syscall-level throttling and its blind spots."""

import pytest

from repro import Environment, OS, SSD, HDD, KB, MB
from repro.schedulers import SCSToken
from repro.workloads import prefill_file


def make_os(device=None):
    env = Environment()
    scheduler = SCSToken()
    machine = OS(env, device=device or SSD(), scheduler=scheduler, memory_bytes=512 * MB)
    return env, machine, scheduler


def drive(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def test_unthrottled_task_passes_free():
    env, machine, scheduler = make_os()
    task = machine.spawn("free")

    def proc():
        handle = yield from machine.creat(task, "/f")
        start = env.now
        yield from handle.append(1 * MB)
        return env.now - start

    elapsed = drive(env, proc())
    assert elapsed < 0.01  # only CPU cost, no token stalls


def test_throttled_write_rate_enforced():
    env, machine, scheduler = make_os()
    task = machine.spawn("slow")
    scheduler.set_limit(task, rate=1 * MB, cap=64 * KB)

    def proc():
        handle = yield from machine.creat(task, "/f")
        start = env.now
        total = 4 * MB
        written = 0
        while written < total:
            written += yield from handle.append(64 * KB)
        return total / (env.now - start)

    rate = drive(env, proc())
    assert rate == pytest.approx(1 * MB, rel=0.2)


def test_cache_hit_reads_not_charged():
    """The authors' concession: the FS tells SCS which reads hit."""
    env, machine, scheduler = make_os()
    task = machine.spawn("reader")
    bucket = scheduler.set_limit(task, rate=1 * MB)

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(1 * MB)  # cached and dirty
        charged_before = bucket.charged_total
        yield from handle.pread(0, 1 * MB)
        return bucket.charged_total - charged_before

    charged = drive(env, proc())
    assert charged == 0


def test_buffer_overwrites_fully_charged():
    """SCS's fatal flaw: overwrites cost full tokens despite no I/O."""
    env, machine, scheduler = make_os()
    task = machine.spawn("writer")
    bucket = scheduler.set_limit(task, rate=1 * MB)

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.pwrite(0, 64 * KB)
        before = bucket.charged_total
        yield from handle.pwrite(0, 64 * KB)  # same bytes again
        return bucket.charged_total - before

    charged = drive(env, proc())
    assert charged == 64 * KB  # billed as if it were new I/O


def test_random_reads_undercharged():
    """4 KB of random read costs 4 KB of tokens — far below true cost."""
    env, machine, scheduler = make_os(device=HDD())
    task = machine.spawn("seeker")
    bucket = scheduler.set_limit(task, rate=10 * MB)
    setup = machine.spawn("setup")

    def proc():
        yield from prefill_file(machine, setup, "/big", 16 * MB)
        handle = yield from machine.open(task, "/big")
        before = bucket.charged_total
        start = env.now
        yield from handle.pread(8 * MB, 4 * KB)  # a seek + 4 KB
        elapsed = env.now - start
        return bucket.charged_total - before, elapsed

    charged, elapsed = drive(env, proc())
    # Charged nominal bytes even though the disk spent ~10 ms.
    assert charged == 4 * KB
    true_cost_bytes = elapsed * 110 * MB  # sequential-equivalent
    assert true_cost_bytes > 20 * charged


def test_scs_hook_burns_cpu_per_call():
    env, machine, scheduler = make_os()
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(4 * KB)
        busy_before = machine.cpu.busy_time
        yield from handle.pread(0, 4 * KB)  # cache hit, still hooked
        return machine.cpu.busy_time - busy_before

    from repro.schedulers.scs import SCS_HOOK_CPU

    cpu_used = drive(env, proc())
    assert cpu_used >= SCS_HOOK_CPU
