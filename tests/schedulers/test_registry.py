"""The scheduler registry: one construction path for CLI/experiments."""

import pytest

from repro import MB, Environment, OS, SSD
from repro.schedulers import (
    AFQ,
    CFQ,
    REGISTRY,
    BlockDeadline,
    Noop,
    SCSToken,
    SplitDeadline,
    SplitNoop,
    SplitToken,
    make_scheduler,
)


def test_registry_covers_all_schedulers():
    assert REGISTRY == {
        "noop": Noop,
        "cfq": CFQ,
        "block-deadline": BlockDeadline,
        "scs-token": SCSToken,
        "split-noop": SplitNoop,
        "afq": AFQ,
        "split-deadline": SplitDeadline,
        "split-token": SplitToken,
    }


def test_registry_keys_match_class_names():
    for name, cls in REGISTRY.items():
        assert cls.name == name


def test_make_scheduler_constructs_instances():
    assert isinstance(make_scheduler("cfq"), CFQ)
    assert isinstance(make_scheduler("afq"), AFQ)


def test_make_scheduler_forwards_kwargs():
    sched = make_scheduler("block-deadline", read_deadline=0.123)
    assert sched.read_deadline == 0.123
    split = make_scheduler("split-deadline", fsync_deadline=0.7, own_writeback=True)
    assert split.fsync_deadline == 0.7
    assert split.own_writeback


def test_unknown_name_lists_choices():
    with pytest.raises(ValueError) as excinfo:
        make_scheduler("bfq")
    message = str(excinfo.value)
    assert "bfq" in message
    for name in REGISTRY:
        assert name in message


def test_build_stack_accepts_scheduler_name():
    from repro.experiments.common import build_stack

    env, machine = build_stack(scheduler="split-token", device="ssd",
                               memory_bytes=64 * MB)
    assert isinstance(machine.scheduler, SplitToken)


def test_os_accepts_scheduler_name():
    machine = OS(Environment(), device=SSD(), scheduler="cfq", memory_bytes=64 * MB)
    assert isinstance(machine.elevator, CFQ)


def test_os_rejects_unknown_scheduler_name():
    with pytest.raises(ValueError, match="valid choices"):
        OS(Environment(), device=SSD(), scheduler="nope", memory_bytes=64 * MB)
