"""Tests for the CFQ elevator model."""

from repro.block import BlockQueue, BlockRequest
from repro.block.request import READ
from repro.devices import HDD, SSD
from repro.proc import ProcessTable
from repro.schedulers.cfq import CFQ, priority_weight
from repro.sim import Environment


def make_stack(scheduler, device=None):
    env = Environment()
    table = ProcessTable()
    queue = BlockQueue(env, device or SSD(), scheduler, process_table=table)
    return env, table, queue


def test_priority_weight_range():
    assert priority_weight(0) == 8
    assert priority_weight(7) == 1
    assert [priority_weight(p) for p in range(8)] == [8, 7, 6, 5, 4, 3, 2, 1]


def test_requests_grouped_by_submitter():
    cfq = CFQ()
    env, table, queue = make_stack(cfq)
    a, b = table.spawn("a"), table.spawn("b")

    def proc():
        events = [
            queue.submit(BlockRequest(READ, 0, 1, a)),
            queue.submit(BlockRequest(READ, 100, 1, b)),
            queue.submit(BlockRequest(READ, 1, 1, a)),
        ]
        for e in events:
            yield e

    env.process(proc())
    env.run()
    assert queue.completed == 3
    assert set(cfq.disk_time) == {a.pid, b.pid}


def test_slice_budget_scales_with_priority():
    cfq = CFQ(base_slice=0.1)
    env, table, queue = make_stack(cfq)
    high = table.spawn("high", priority=0)
    table.spawn("low", priority=7)

    def proc():
        e1 = queue.submit(BlockRequest(READ, 0, 1, high))
        yield e1

    env.process(proc())
    env.run()
    # After serving high's request, the active slice belongs to high.
    assert cfq._slice_budget == 0.1 * 8 / 4


def test_idle_class_starved_while_others_active():
    cfq = CFQ()
    env, table, queue = make_stack(cfq, device=HDD())
    normal = table.spawn("normal", priority=4)
    idle = table.spawn("idle", priority=7, idle_class=True)
    order = []

    def submit_all():
        idle_req = BlockRequest(READ, 5000, 1, idle)
        normal_reqs = [BlockRequest(READ, i * 10, 1, normal) for i in range(5)]
        events = [queue.submit(idle_req)] + [queue.submit(r) for r in normal_reqs]
        queue.completion_listeners.append(lambda req: order.append(req.submitter.name))
        for e in events:
            yield e

    env.process(submit_all())
    env.run()
    # All of normal's requests complete before the idle one.
    assert order.index("idle") == len(order) - 1


def test_anticipation_holds_disk_for_sync_reader():
    cfq = CFQ(idle_window=0.05)
    env, table, queue = make_stack(cfq, device=HDD())
    reader = table.spawn("reader")
    other = table.spawn("other")
    order = []
    queue.completion_listeners.append(lambda req: order.append(req.submitter.name))

    def reader_proc():
        # Sequential dependent reads with tiny think time.
        position = 0
        for _ in range(3):
            request = BlockRequest(READ, position, 256, reader, sync=True)
            yield queue.submit(request)
            position += 256
            yield env.timeout(0.001)  # within the idle window

    def other_proc():
        yield env.timeout(0.005)
        yield queue.submit(BlockRequest(READ, 500000, 256, other, sync=True))

    env.process(reader_proc())
    env.process(other_proc())
    env.run()
    # Anticipation keeps the reader's streak together despite the
    # competing request arriving mid-stream.
    assert order[:3] == ["reader", "reader", "reader"]


def test_anticipation_times_out():
    cfq = CFQ(idle_window=0.002)
    env, table, queue = make_stack(cfq, device=HDD())
    reader = table.spawn("reader")
    other = table.spawn("other")
    done = []

    def reader_proc():
        yield queue.submit(BlockRequest(READ, 0, 1, reader, sync=True))
        # Never issues again: anticipation must expire.

    def other_proc():
        yield env.timeout(0.001)
        yield queue.submit(BlockRequest(READ, 1000, 1, other, sync=True))
        done.append(env.now)

    env.process(reader_proc())
    env.process(other_proc())
    env.run()
    assert done, "other's request must eventually be served"
