"""Tests for block-layer retry, backoff, timeout, and EIO surfacing."""

import pytest

from repro import KB, MB, Environment, OS
from repro.block import BlockQueue, BlockRequest
from repro.block.request import READ, WRITE
from repro.cache.cache import PageCache
from repro.cache.page import PageKey
from repro.core.tags import TagManager
from repro.devices import SSD
from repro.devices.base import Device
from repro.faults import EIO, FaultInjector, FaultPlan, FaultWindow, FaultyDevice, MediumError
from repro.proc import ProcessTable
from repro.schedulers.noop import Noop
from repro.sim.rand import RandomStreams


class ScriptedDevice(Device):
    """Fails the first *failures* attempts, then serves in fixed time."""

    def __init__(self, failures, service=0.1, error_latency=0.01):
        super().__init__(capacity_blocks=1 << 20, name="scripted")
        self.failures = failures
        self.service = service
        self.error_latency = error_latency
        self.calls = 0

    def service_time(self, op, block, nblocks):
        self._check_bounds(block, nblocks)
        self.calls += 1
        if self.calls <= self.failures:
            raise MediumError("scripted failure", latency=self.error_latency)
        self._account(op, nblocks, self.service)
        return self.service


def make_queue(device, **kwargs):
    env = Environment()
    table = ProcessTable()
    queue = BlockQueue(env, device, Noop(), process_table=table, **kwargs)
    return env, table, queue


def submit_one(env, queue, task, op=READ, pages=None):
    request = BlockRequest(op, 0, 8, task, pages=pages)
    queue.submit(request)
    env.run(until=request.done)
    return request


def test_transient_errors_retried_with_exponential_backoff():
    """2 failures then success: 2*(error latency) + backoff 0.01+0.02 + service."""
    env, table, queue = make_queue(ScriptedDevice(failures=2))
    request = submit_one(env, queue, table.spawn("t"))
    assert not request.failed
    assert request.attempts == 3
    assert queue.errors == 2 and queue.retries == 2 and queue.failed == 0
    assert env.now == pytest.approx(0.01 + 0.01 + 0.01 + 0.02 + 0.1)


def test_retry_exhaustion_fails_request():
    env, table, queue = make_queue(ScriptedDevice(failures=100))
    request = submit_one(env, queue, table.spawn("t"))
    assert request.failed
    assert isinstance(request.error, MediumError)
    assert request.attempts == 1 + queue.max_retries == 4
    assert queue.errors == 4 and queue.retries == 3 and queue.failed == 1
    # 4 error latencies + backoffs 0.01 + 0.02 + 0.04.
    assert env.now == pytest.approx(4 * 0.01 + 0.01 + 0.02 + 0.04)


def test_done_event_succeeds_even_on_failure():
    """Waiters observe request.failed; done never .fail()s."""
    env, table, queue = make_queue(ScriptedDevice(failures=100))
    request = submit_one(env, queue, table.spawn("t"))
    assert request.done.triggered
    assert request.done.value is request  # succeeded with the request


def test_failed_write_redirties_pages():
    env, table, queue = make_queue(ScriptedDevice(failures=100))
    cache = PageCache(env, TagManager(), memory_bytes=64 * MB)
    task = table.spawn("t")
    page = cache.mark_dirty(PageKey(1, 0), task)
    page.write_submitted()
    assert page.under_writeback

    request = submit_one(env, queue, task, op=WRITE, pages=[page])
    assert request.failed
    assert page.dirty and not page.under_writeback  # stays dirty for a later flush
    assert cache.dirty_pages == 1


def test_successful_write_cleans_pages():
    env, table, queue = make_queue(ScriptedDevice(failures=0))
    cache = PageCache(env, TagManager(), memory_bytes=64 * MB)
    task = table.spawn("t")
    page = cache.mark_dirty(PageKey(1, 0), task)
    page.write_submitted()
    submit_one(env, queue, task, op=WRITE, pages=[page])
    assert not page.dirty


def test_scheduler_notified_of_failure():
    class Spy(Noop):
        def __init__(self):
            super().__init__()
            self.failed_reqs, self.completed_reqs = [], []

        def request_failed(self, request):
            self.failed_reqs.append(request)

        def request_completed(self, request):
            self.completed_reqs.append(request)

    spy = Spy()
    env = Environment()
    table = ProcessTable()
    queue = BlockQueue(env, ScriptedDevice(failures=100), spy, process_table=table)
    request = submit_one(env, queue, table.spawn("t"))
    assert spy.failed_reqs == [request]
    assert spy.completed_reqs == []


def test_default_request_failed_falls_through_to_completed():
    """Elevators unaware of failures still settle their accounting."""
    class Spy(Noop):
        def __init__(self):
            super().__init__()
            self.completed_reqs = []

        def request_completed(self, request):
            self.completed_reqs.append(request)

    spy = Spy()
    env = Environment()
    table = ProcessTable()
    queue = BlockQueue(env, ScriptedDevice(failures=100), spy, process_table=table)
    request = submit_one(env, queue, table.spawn("t"))
    assert spy.completed_reqs == [request]  # base request_failed delegated


def test_stalled_device_trips_timeout_not_hang():
    """A 60 s stall against a 30 s timeout: abort, retry, eventually fail."""
    class StalledDevice(Device):
        def __init__(self):
            super().__init__(capacity_blocks=1 << 20, name="stalled")

        def service_time(self, op, block, nblocks):
            self._check_bounds(block, nblocks)
            return 60.0

    env, table, queue = make_queue(StalledDevice(), retry_backoff=0.0)
    request = submit_one(env, queue, table.spawn("t"))
    assert request.failed
    assert queue.timeouts == 4
    assert env.now == pytest.approx(4 * 30.0)  # never waits the full stall


def test_non_retryable_error_propagates():
    """A bounds bug must crash loudly, not be retried."""
    env, table, queue = make_queue(SSD(capacity_blocks=100))
    task = table.spawn("t")
    request = BlockRequest(READ, 99, 2, task)
    queue.submit(request)
    from repro.devices import DeviceError

    with pytest.raises(DeviceError):
        env.run(until=request.done)
    assert queue.retries == 0


def make_faulty_os(plan, seed=0, **kwargs):
    env = Environment()
    injector = FaultInjector(env, plan, RandomStreams(seed))
    device = FaultyDevice(SSD(), injector)
    machine = OS(env, device=device, scheduler=Noop(), memory_bytes=512 * MB, **kwargs)
    return env, machine


def drive(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def test_persistent_read_error_surfaces_eio_at_syscall():
    env, machine = make_faulty_os(
        FaultPlan(error_windows=[FaultWindow(0.0, float("inf"), op="read")])
    )
    task = machine.spawn("app")

    def setup():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(64 * KB)
        yield from handle.fsync()  # data reaches disk (writes are clean)
        return handle

    handle = drive(env, setup())
    machine.cache.free_file(handle.inode.id)  # force a device read

    def reader():
        yield from handle.pread(0, 4 * KB)

    with pytest.raises(EIO) as info:
        drive(env, reader())
    assert info.value.errno == 5


def test_fsync_data_write_failure_raises_eio():
    env, machine = make_faulty_os(
        FaultPlan(error_windows=[FaultWindow(0.0, float("inf"), op="write")])
    )
    task = machine.spawn("app")

    def writer():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(64 * KB)
        yield from handle.fsync()

    with pytest.raises(EIO):
        drive(env, writer())
    assert machine.block_queue.failed > 0


def test_persistent_write_error_aborts_journal_with_eio():
    """The periodic commit fails on-device; later fsyncs observe EIO."""
    env, machine = make_faulty_os(
        FaultPlan(error_windows=[FaultWindow(0.0, float("inf"), op="write")])
    )
    task = machine.spawn("app")

    def writer():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(64 * KB)
        return handle

    handle = drive(env, writer())
    env.run(until=env.now + 30.0)  # commit timer fires and its writes fail
    assert machine.fs.journal.aborted

    def syncer():
        yield from handle.fsync()

    with pytest.raises(EIO):
        drive(env, syncer())


def test_writeback_daemon_survives_write_errors():
    """pdflush counts failures and stays alive; pages remain dirty."""
    env, machine = make_faulty_os(
        FaultPlan(error_windows=[FaultWindow(0.0, float("inf"), op="write")])
    )
    task = machine.spawn("app")

    def writer():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(256 * KB)

    drive(env, writer())
    machine.writeback.kick()
    env.run(until=env.now + 40.0)
    assert machine.writeback.write_errors > 0
    assert machine.cache.dirty_pages > 0  # failed writes re-dirtied
    env.run(until=env.now + 10.0)  # daemon still alive (no crash)
