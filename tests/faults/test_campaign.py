"""The chaos campaign: plan generation, invariants, determinism, shrinking."""

import json
import random

import pytest

from repro.faults.campaign import (
    _simplifications,
    campaign_cells,
    generate_plan,
    plan_for_index,
    run_campaign,
    run_one,
    shrink_plan,
)

#: Small-but-real campaign shape used across these tests; duration is
#: sim-time, so the wall cost is a couple of seconds per campaign.
PLANS = 4
DURATION = 1.0


def non_neutral_components(payload):
    """How many fault components a serialized plan actually carries."""
    count = 0
    for field, neutral in (
        ("read_error_prob", 0.0),
        ("write_error_prob", 0.0),
        ("stall_prob", 0.0),
        ("slow_factor", 1.0),
    ):
        if payload.get(field, neutral) != neutral:
            count += 1
    if payload.get("power_loss_at") is not None:
        count += 1
    for field in ("error_windows", "slow_windows", "channel_faults", "hiccups"):
        count += len(payload.get(field) or ())
    return count


class TestPlanGeneration:
    def test_same_seed_same_plan(self):
        plans = [repr(generate_plan(random.Random(7))) for _ in range(2)]
        assert plans[0] == plans[1]

    def test_generated_plans_never_empty(self):
        for seed in range(50):
            assert not generate_plan(random.Random(seed)).empty

    def test_plan_for_index_is_deterministic_and_varied(self):
        first = [repr(plan_for_index(1, i)) for i in range(10)]
        second = [repr(plan_for_index(1, i)) for i in range(10)]
        assert first == second
        assert len(set(first)) > 1  # different indices draw different plans

    def test_events_scale_to_horizon(self):
        for seed in range(30):
            plan = generate_plan(random.Random(seed), horizon=2.0)
            if plan.power_loss_at is not None:
                assert 0.0 < plan.power_loss_at <= 2.0
            for fault in plan.channel_faults:
                assert fault.start <= 1.0

    def test_cells_embed_serializable_configs(self):
        cells = campaign_cells(plans=3, seed=5, duration=DURATION)
        assert [cell.label for cell in cells] == ["plan000", "plan001", "plan002"]
        json.dumps([cell.kwargs for cell in cells])  # worker-portable


class TestCampaign:
    def test_small_campaign_holds_all_invariants(self):
        report = run_campaign(plans=PLANS, seed=1, duration=DURATION, shrink=False)
        assert report["violations"] == 0
        assert report["failed_runs"] == 0
        assert len(report["runs"]) == PLANS
        json.dumps(report)  # the report is a JSON artefact

    def test_serial_and_parallel_reports_identical(self):
        serial = run_campaign(plans=PLANS, seed=3, duration=DURATION, jobs=1,
                              shrink=False)
        parallel = run_campaign(plans=PLANS, seed=3, duration=DURATION, jobs=2,
                                shrink=False)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

    def test_run_one_verdict_shape(self):
        cell = campaign_cells(plans=1, seed=1, duration=DURATION)[0]
        verdict = run_one(**cell.kwargs)
        assert verdict["violations"] == []
        assert set(verdict) >= {
            "plan", "violations", "power_loss", "eio",
            "a_mbps", "b_mbps", "sim_end", "fault_summary",
        }


class TestBrokenInvariantIsCaughtAndShrunk:
    @pytest.mark.timeout(300)
    def test_forbid_retries_sanity_trips_and_shrinks(self):
        """The intentionally-unsatisfiable invariant must go red, and
        the offending plan must come back minimised."""
        report = run_campaign(
            plans=4, seed=1, duration=1.5, forbid_retries=True, shrink=True
        )
        assert report["failed_runs"] >= 1
        failure = report["failures"][0]
        assert any("sanity" in violation for violation in failure["violations"])
        original = non_neutral_components(failure["plan"])
        shrunk = non_neutral_components(failure["shrunk_plan"])
        assert 1 <= shrunk < original
        assert failure["shrink_evals"] > 0


class TestShrinking:
    def test_shrinks_to_single_relevant_component(self):
        payload = {
            "read_error_prob": 0.02,
            "write_error_prob": 0.01,
            "stall_prob": 0.001,
            "stall_duration": 2.0,
            "channel_faults": [
                {"channel": 0, "factor": 8.0, "start": 0.0, "end": 1.0}
            ],
            "hiccups": [{"period": 1.0, "duration": 0.2, "factor": 4.0}],
            "power_loss_at": 2.5,
        }
        # "Fails" iff reads can error: everything else must get dropped.
        minimal, evals = shrink_plan(
            payload, lambda p: p.get("read_error_prob", 0.0) > 0
        )
        assert non_neutral_components(minimal) == 1
        assert minimal["read_error_prob"] == 0.02
        assert evals <= 64

    def test_all_removals_failing_shrinks_to_empty(self):
        payload = {"read_error_prob": 0.02, "write_error_prob": 0.01}
        minimal, evals = shrink_plan(payload, lambda p: True)
        assert non_neutral_components(minimal) == 0
        assert evals == 2  # one eval per removed component

    def test_budget_bounds_evaluations(self):
        payload = {"read_error_prob": 0.02, "write_error_prob": 0.01}
        calls = []

        def check(p):
            calls.append(p)
            return False  # nothing reproduces: would try all variants

        minimal, evals = shrink_plan(payload, check, budget=1)
        assert evals == 1 and len(calls) == 1  # stopped mid-pass
        assert minimal == payload

    def test_irreducible_plan_survives_unchanged(self):
        payload = {"read_error_prob": 0.02}
        minimal, evals = shrink_plan(payload, lambda p: p.get("read_error_prob", 0.0) > 0)
        assert minimal == payload

    def test_simplifications_cover_every_component(self):
        payload = {
            "read_error_prob": 0.1,
            "slow_windows": [
                {"start": 0, "end": 1, "factor": 2.0},
                {"start": 1, "end": 2, "factor": 3.0},
            ],
        }
        descriptions = [description for description, _ in _simplifications(payload)]
        assert descriptions == [
            "drop read_error_prob",
            "drop slow_windows[0]",
            "drop slow_windows[1]",
        ]
