"""Retry, backoff, and exhaustion semantics at queue depth > 1.

PR 6 regression coverage: retries were written for a single dispatch
slot, and hedged/multi-slot dispatch must not bend them — exhaustion
still fails the request after ``max_retries``, backoff still doubles
per attempt, failed writes still re-dirty their pages, EIO still
reaches the syscall layer, and per-slot counters account for every
error without double counting.
"""

import pytest

from repro import KB, MB, Environment, OS
from repro.block import BlockQueue, BlockRequest
from repro.block.request import READ, WRITE
from repro.cache.cache import PageCache
from repro.cache.page import PageKey
from repro.core.tags import TagManager
from repro.devices import SSD
from repro.devices.base import Device
from repro.faults import EIO, FaultInjector, FaultPlan, FaultWindow, FaultyDevice, MediumError
from repro.proc import ProcessTable
from repro.schedulers.noop import Noop
from repro.sim.rand import RandomStreams


class BadBlockDevice(Device):
    """Multi-channel device where reads/writes of block 0 always fail."""

    def __init__(self, service=0.001, error_latency=0.001, channels=4):
        super().__init__(capacity_blocks=1 << 20, name="badblock", channels=channels)
        self.service = service
        self.error_latency = error_latency

    def service_time(self, op, block, nblocks):
        self._check_bounds(block, nblocks)
        if block == 0:
            raise MediumError("bad block 0", latency=self.error_latency)
        self._account(op, nblocks, self.service)
        return self.service


def make_queue(device, depth=4, **kwargs):
    env = Environment()
    table = ProcessTable()
    queue = BlockQueue(
        env, device, Noop(), process_table=table, queue_depth=depth, **kwargs
    )
    return env, table, queue


def submit_all(env, table, queue, requests):
    def proc():
        events = [queue.submit(request) for request in requests]
        for event in events:
            yield event

    env.process(proc())
    env.run()


def test_retry_exhaustion_at_depth_fails_only_the_sick_request():
    env, table, queue = make_queue(BadBlockDevice(), depth=4)
    task = table.spawn("t")
    requests = [BlockRequest(READ, i * 64, 8, task) for i in range(8)]
    submit_all(env, table, queue, requests)

    bad, good = requests[0], requests[1:]
    assert bad.failed and isinstance(bad.error, MediumError)
    assert bad.attempts == 1 + queue.max_retries == 4
    assert all(not request.failed for request in good)
    assert queue.completed == 7 and queue.failed == 1
    assert queue.submitted == queue.completed + queue.failed  # conservation


def test_per_slot_counters_account_for_every_error():
    env, table, queue = make_queue(BadBlockDevice(), depth=4)
    task = table.spawn("t")
    # Two permanently-failing requests: 4 attempts (3 retries) each.
    requests = [BlockRequest(READ, 0, 8, task) for _ in range(2)]
    requests += [BlockRequest(READ, 64 * (i + 1), 8, task) for i in range(6)]
    submit_all(env, table, queue, requests)

    assert queue.failed == 2 and queue.errors == 8 and queue.retries == 6
    assert sum(slot.errors for slot in queue.slots) == queue.errors
    assert sum(slot.retries for slot in queue.slots) == queue.retries
    assert sum(slot.failed for slot in queue.slots) == queue.failed
    assert sum(slot.served for slot in queue.slots) == queue.submitted


def test_retries_stay_on_their_slot():
    """All 4 attempts of a failing request burn one slot; its siblings
    keep serving — the batch finishes in service time, not retry time."""
    env, table, queue = make_queue(BadBlockDevice(), depth=4)
    task = table.spawn("t")
    requests = [BlockRequest(READ, 0, 8, task)]
    requests += [BlockRequest(READ, 64 * (i + 1), 8, task) for i in range(9)]
    submit_all(env, table, queue, requests)

    sick_slots = [slot for slot in queue.slots if slot.failed]
    assert len(sick_slots) == 1
    assert sick_slots[0].errors == 4  # every attempt on the same slot
    # 9 good requests over 3 remaining slots, 1ms each: done by 3 ms,
    # while the sick slot alone rides out 4 error latencies + backoffs.
    good_done = max(request.complete_time for request in requests[1:])
    assert good_done == pytest.approx(0.003)
    assert requests[0].complete_time == pytest.approx(4 * 0.001 + 0.01 + 0.02 + 0.04)


def test_failed_write_redirties_pages_at_depth():
    env, table, queue = make_queue(BadBlockDevice(), depth=4)
    cache = PageCache(env, TagManager(), memory_bytes=64 * MB)
    task = table.spawn("t")
    bad_page = cache.mark_dirty(PageKey(1, 0), task)
    good_page = cache.mark_dirty(PageKey(1, 1), task)
    for page in (bad_page, good_page):
        page.write_submitted()

    requests = [
        BlockRequest(WRITE, 0, 8, task, pages=[bad_page]),
        BlockRequest(WRITE, 64, 8, task, pages=[good_page]),
    ]
    submit_all(env, table, queue, requests)
    assert requests[0].failed and not requests[1].failed
    assert bad_page.dirty and not bad_page.under_writeback
    assert not good_page.dirty
    assert cache.dirty_pages == 1


def test_backoff_doubles_from_configured_base():
    env, table, queue = make_queue(BadBlockDevice(error_latency=0.0), depth=2,
                                   retry_backoff=0.05)
    task = table.spawn("t")
    request = BlockRequest(READ, 0, 8, task)
    submit_all(env, table, queue, [request])
    # 4 instant errors, backoffs 0.05 + 0.10 + 0.20 between attempts.
    assert request.failed
    assert env.now == pytest.approx(0.05 + 0.10 + 0.20)


def test_zero_backoff_retries_back_to_back():
    env, table, queue = make_queue(BadBlockDevice(error_latency=0.002), depth=2,
                                   retry_backoff=0.0)
    task = table.spawn("t")
    request = BlockRequest(READ, 0, 8, task)
    submit_all(env, table, queue, [request])
    assert request.failed
    assert env.now == pytest.approx(4 * 0.002)  # only the error latencies


def test_timeouts_back_off_like_errors():
    """A stalled attempt is abandoned at request_timeout, then backs
    off exactly as a medium error would before the next attempt."""

    class Stalled(Device):
        def __init__(self):
            super().__init__(capacity_blocks=1 << 20, name="stalled", channels=2)

        def service_time(self, op, block, nblocks):
            self._check_bounds(block, nblocks)
            return 100.0

    env, table, queue = make_queue(Stalled(), depth=2, request_timeout=1.0)
    task = table.spawn("t")
    request = BlockRequest(READ, 0, 8, task)
    submit_all(env, table, queue, [request])
    assert request.failed
    assert queue.timeouts == 4
    assert env.now == pytest.approx(4 * 1.0 + 0.01 + 0.02 + 0.04)


def test_eio_surfaces_at_syscall_at_depth():
    env = Environment()
    injector = FaultInjector(
        env,
        FaultPlan(error_windows=[FaultWindow(0.0, float("inf"), op="read")]),
        RandomStreams(0),
    )
    machine = OS(
        env, device=FaultyDevice(SSD(), injector), scheduler=Noop(),
        memory_bytes=512 * MB, queue_depth=4,
    )
    task = machine.spawn("app")

    def setup():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(64 * KB)
        yield from handle.fsync()
        return handle

    proc = env.process(setup())
    env.run(until=proc)
    handle = proc.value
    machine.cache.free_file(handle.inode.id)  # force device reads

    def reader():
        yield from handle.pread(0, 4 * KB)

    with pytest.raises(EIO) as info:
        reader_proc = env.process(reader())
        env.run(until=reader_proc)
    assert info.value.errno == 5
    assert machine.block_queue.failed > 0
