"""Tests for the fault injector: decisions, counters, determinism."""

from repro.faults import CLEAN, FaultInjector, FaultPlan, FaultWindow, SlowWindow
from repro.sim import Environment
from repro.sim.rand import RandomStreams


def make_injector(plan, seed=0):
    env = Environment()
    return env, FaultInjector(env, plan, RandomStreams(seed))


def test_empty_plan_never_draws_rng():
    env, injector = make_injector(FaultPlan())
    rng = injector._rng
    state_before = rng.getstate()
    for i in range(100):
        assert injector.decide("read", i, 1) is CLEAN
        assert injector.decide("write", i, 1) is CLEAN
    assert rng.getstate() == state_before  # truly inert


def test_same_seed_same_decisions():
    decisions = []
    for _ in range(2):
        env, injector = make_injector(
            FaultPlan(read_error_prob=0.3, stall_prob=0.1), seed=42
        )
        decisions.append([injector.decide("read", i, 1) for i in range(200)])
    assert decisions[0] == decisions[1]


def test_different_seeds_differ():
    outcomes = []
    for seed in (1, 2):
        env, injector = make_injector(FaultPlan(read_error_prob=0.3), seed=seed)
        outcomes.append([injector.decide("read", i, 1).error for i in range(200)])
    assert outcomes[0] != outcomes[1]


def test_error_window_fails_every_matching_op():
    env, injector = make_injector(
        FaultPlan(error_windows=[FaultWindow(0.0, 10.0, op="write")])
    )
    assert injector.decide("write", 0, 1).error
    assert not injector.decide("read", 0, 1).error
    assert injector.window_errors == 1
    assert injector.injected_write_errors == 1


def test_slow_window_multiplies_inside_interval():
    env, injector = make_injector(
        FaultPlan(slow_windows=[SlowWindow(5.0, 10.0, 4.0)])
    )
    assert injector.decide("read", 0, 1) is CLEAN  # now=0, outside

    env2 = Environment(initial_time=6.0)
    injector2 = FaultInjector(env2, FaultPlan(slow_windows=[SlowWindow(5.0, 10.0, 4.0)]),
                              RandomStreams(0))
    decision = injector2.decide("read", 0, 1)
    assert decision.slow_factor == 4.0
    assert injector2.slowed_ops == 1


def test_global_slow_factor_applies_everywhere():
    env, injector = make_injector(FaultPlan(slow_factor=2.0))
    decision = injector.decide("write", 0, 1)
    assert decision.slow_factor == 2.0
    assert not decision.error


def test_error_counters_by_op():
    env, injector = make_injector(
        FaultPlan(read_error_prob=1.0, write_error_prob=1.0)
    )
    injector.decide("read", 0, 1)
    injector.decide("write", 0, 1)
    assert injector.injected_read_errors == 1
    assert injector.injected_write_errors == 1
    summary = injector.summary()
    assert summary["injected_read_errors"] == 1
    assert summary["injected_write_errors"] == 1


def test_stall_adds_plan_duration():
    env, injector = make_injector(
        FaultPlan(stall_prob=1.0, stall_duration=45.0)
    )
    decision = injector.decide("read", 0, 1)
    assert decision.extra_latency == 45.0
    assert injector.injected_stalls == 1


def test_power_loss_halts_environment():
    env = Environment()
    plan = FaultPlan(power_loss_at=5.0)
    injector = FaultInjector(env, plan, RandomStreams(0))
    injector.arm_power_loss()
    reason = env.run()
    assert env.halted
    assert env.now == 5.0
    assert reason == 5.0
    assert injector.power_lost_at == 5.0
    # Halt is sticky: further runs return immediately.
    assert env.run(until=100.0) == 5.0
    assert env.now == 5.0


def test_arm_power_loss_without_plan_is_noop():
    env = Environment()
    injector = FaultInjector(env, FaultPlan(read_error_prob=0.1), RandomStreams(0))
    injector.arm_power_loss()
    env.timeout(1.0)
    env.run(until=2.0)
    assert not env.halted
