"""Fail-slow fault models: per-channel faults and periodic hiccups.

Covers the two plan primitives added for the chaos campaign —
:class:`ChannelFault` (one sick flash channel) and :class:`Hiccup`
(periodic GC-like slow episodes) — plus their injector semantics and
the summary counters that expose them.
"""

import pytest

from repro.devices import SSD
from repro.faults import (
    CLEAN,
    ChannelFault,
    FaultInjector,
    FaultPlan,
    FaultyDevice,
    Hiccup,
    SlowWindow,
)
from repro.sim import Environment
from repro.sim.rand import RandomStreams


def make_injector(plan, seed=0, at=0.0):
    env = Environment(initial_time=at) if at else Environment()
    return env, FaultInjector(env, plan, RandomStreams(seed))


class TestChannelFaultModel:
    def test_covers_matching_channel_only(self):
        fault = ChannelFault(channel=3, factor=8.0)
        assert fault.covers(0.0, 3)
        assert not fault.covers(0.0, 2)
        assert not fault.covers(0.0, None)  # channel-less op: no identity

    def test_covers_half_open_time_scope(self):
        fault = ChannelFault(channel=0, factor=8.0, start=1.0, end=2.0)
        assert not fault.covers(0.5, 0)
        assert fault.covers(1.0, 0)
        assert fault.covers(1.999, 0)
        assert not fault.covers(2.0, 0)

    def test_default_scope_is_forever(self):
        fault = ChannelFault(channel=0, factor=2.0)
        assert fault.covers(1e9, 0)

    def test_plan_validates_channel_faults(self):
        with pytest.raises(ValueError):
            FaultPlan(channel_faults=[ChannelFault(channel=-1, factor=2.0)])
        with pytest.raises(ValueError):
            FaultPlan(channel_faults=[ChannelFault(channel=0, factor=0.5)])
        with pytest.raises(ValueError):
            FaultPlan(channel_faults=[ChannelFault(0, 2.0, start=5.0, end=5.0)])

    def test_plan_with_channel_fault_is_not_empty(self):
        assert not FaultPlan(channel_faults=[ChannelFault(0, 2.0)]).empty


class TestHiccupModel:
    def test_periodic_coverage(self):
        hiccup = Hiccup(period=1.0, duration=0.25, factor=4.0)
        assert hiccup.covers(0.0)
        assert hiccup.covers(0.2)
        assert not hiccup.covers(0.25)
        assert not hiccup.covers(0.9)
        # ...and again every period.
        assert hiccup.covers(3.1)
        assert not hiccup.covers(3.6)

    def test_plan_validates_hiccups(self):
        with pytest.raises(ValueError):
            FaultPlan(hiccups=[Hiccup(period=0.0, duration=0.1, factor=2.0)])
        with pytest.raises(ValueError):
            FaultPlan(hiccups=[Hiccup(period=1.0, duration=0.0, factor=2.0)])
        with pytest.raises(ValueError):
            FaultPlan(hiccups=[Hiccup(period=1.0, duration=1.5, factor=2.0)])
        with pytest.raises(ValueError):
            FaultPlan(hiccups=[Hiccup(period=1.0, duration=0.5, factor=0.9)])

    def test_duration_may_equal_period(self):
        # A degenerate always-on hiccup is legal (duration == period).
        plan = FaultPlan(hiccups=[Hiccup(period=1.0, duration=1.0, factor=2.0)])
        assert not plan.empty


class TestInjectorChannelSemantics:
    def test_factor_applies_only_on_sick_channel(self):
        env, injector = make_injector(
            FaultPlan(channel_faults=[ChannelFault(channel=1, factor=8.0)])
        )
        assert injector.decide("read", 0, 1, channel=0) is CLEAN
        assert injector.decide("read", 0, 1, channel=1).slow_factor == 8.0
        assert injector.decide("read", 0, 1, channel=None) is CLEAN
        assert injector.channel_slow_ops == 1

    def test_channel_decisions_draw_no_rng(self):
        env, injector = make_injector(
            FaultPlan(channel_faults=[ChannelFault(channel=0, factor=8.0)])
        )
        state = injector._rng.getstate()
        injector.decide("read", 0, 1, channel=0)
        injector.decide("read", 0, 1, channel=1)
        assert injector._rng.getstate() == state  # deterministic, seed-free

    def test_hiccup_applies_by_sim_time(self):
        plan = FaultPlan(hiccups=[Hiccup(period=1.0, duration=0.25, factor=4.0)])
        env, injector = make_injector(plan, at=0.1)
        assert injector.decide("read", 0, 1).slow_factor == 4.0
        env2, injector2 = make_injector(plan, at=0.5)
        assert injector2.decide("read", 0, 1) is CLEAN
        assert injector.hiccup_ops == 1 and injector2.hiccup_ops == 0

    def test_factors_compose_multiplicatively(self):
        env, injector = make_injector(
            FaultPlan(
                slow_windows=[SlowWindow(0.0, 10.0, 2.0)],
                channel_faults=[ChannelFault(channel=0, factor=3.0)],
                hiccups=[Hiccup(period=1.0, duration=1.0, factor=5.0)],
            )
        )
        assert injector.decide("read", 0, 1, channel=0).slow_factor == 30.0


class TestFaultyDevicePropagation:
    def test_serving_channel_reaches_the_injector(self):
        env, injector = make_injector(
            FaultPlan(channel_faults=[ChannelFault(channel=2, factor=10.0)])
        )
        device = FaultyDevice(SSD(), injector)
        healthy = device.service_time("read", 0, 8)
        device.serving_channel = 2
        sick = device.service_time("read", 0, 8)
        device.serving_channel = None
        assert sick == pytest.approx(10.0 * healthy)
        assert injector.channel_slow_ops == 1
        assert injector.slow_extra_time == pytest.approx(sick - healthy)

    def test_summary_reports_failslow_counters(self):
        env, injector = make_injector(
            FaultPlan(
                slow_windows=[SlowWindow(0.0, 10.0, 2.0)],
                channel_faults=[ChannelFault(channel=0, factor=4.0)],
                hiccups=[Hiccup(period=1.0, duration=1.0, factor=2.0)],
            )
        )
        device = FaultyDevice(SSD(), injector)
        device.serving_channel = 0
        device.service_time("read", 0, 8)
        device.serving_channel = None
        summary = injector.summary()
        assert summary["slow_window_ops"] == 1
        assert summary["slow_windows_triggered"] == 1
        assert summary["channel_slow_ops"] == 1
        assert summary["hiccup_ops"] == 1
        assert summary["slowed_ops"] == 1
        assert summary["slow_extra_time"] > 0.0
