"""Power-loss crash and journal-recovery tests (ordered-mode invariant)."""


from repro import KB, MB, Environment, OS
from repro.devices import HDD, SSD
from repro.faults import (
    DurabilityLog,
    FaultInjector,
    FaultPlan,
    FaultyDevice,
    crash_and_recover,
    recover,
)
from repro.fs.journal import CommitRecord
from repro.schedulers.noop import Noop
from repro.sim.rand import RandomStreams


def make_os(device=None, power_loss_at=None, seed=0, **kwargs):
    env = Environment()
    dev = device or SSD()
    if power_loss_at is not None:
        injector = FaultInjector(
            env, FaultPlan(power_loss_at=power_loss_at), RandomStreams(seed)
        )
        dev = FaultyDevice(dev, injector)
        machine = OS(env, device=dev, scheduler=Noop(), memory_bytes=256 * MB, **kwargs)
        injector.arm_power_loss()
        return env, machine
    return env, OS(env, device=dev, scheduler=Noop(), memory_bytes=256 * MB, **kwargs)


def drive(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def appender(machine, task, path, rounds, chunk=64 * KB):
    handle = yield from machine.creat(task, path)
    for _ in range(rounds):
        yield from handle.append(chunk)
        yield from handle.fsync()


def test_power_loss_halts_and_recovery_passes_invariant():
    env, machine = make_os(power_loss_at=2.0, fs_kwargs={"commit_interval": 0.5})
    log = DurabilityLog(machine.block_queue)
    tasks = [machine.spawn(f"w{i}") for i in range(3)]
    for i, task in enumerate(tasks):
        env.process(appender(machine, task, f"/f{i}", rounds=1000))

    reason = env.run()
    assert env.halted
    assert reason == 2.0
    assert env.now == 2.0
    assert machine.fs.journal.commits > 0  # work actually happened

    report = crash_and_recover(machine, log)
    assert report.invariant_ok
    assert report.dropped_pages >= 0
    # Fresh transaction state after recovery.
    assert machine.fs.journal.running.empty
    assert machine.fs.journal.committing is None


def test_power_loss_mid_commit_discards_committing_txn():
    """Cut power precisely while the journal write is on the device."""
    env, machine = make_os(device=HDD())
    log = DurabilityLog(machine.block_queue)
    task = machine.spawn("app")

    def setup():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(256 * KB)

    drive(env, setup())
    journal = machine.fs.journal
    assert not journal.running.empty
    committing = journal.running
    env.process(journal.commit_running())

    # Step the clock until the journal (metadata) write is in flight.
    queue = machine.block_queue
    while not (
        journal.committing is not None
        and queue.in_flight is not None
        and queue.in_flight.metadata
    ):
        env.step()

    report = crash_and_recover(machine, log)
    assert report.discarded_committing_tid == committing.tid
    assert report.torn_request_id is not None
    assert committing.tid not in report.replayed_tids
    assert report.invariant_ok  # no commit record -> nothing to violate


def test_recovery_replays_uncheckpointed_commits():
    env, machine = make_os(fs_kwargs={"commit_interval": 0.5, "checkpoint_delay": 1e6})
    log = DurabilityLog(machine.block_queue)
    task = machine.spawn("app")
    drive(env, appender(machine, task, "/f", rounds=3))
    journal = machine.fs.journal
    assert journal.commits > 0
    committed_tids = [record.tid for record in journal.committed_log]

    report = crash_and_recover(machine, log)
    assert report.invariant_ok
    assert set(report.replayed_tids) == set(committed_tids)
    assert report.replayed_metadata_blocks  # metadata reinstated in place


def test_invariant_checker_detects_fabricated_violation():
    """A forged commit referencing never-written data must be caught."""
    env, machine = make_os()
    log = DurabilityLog(machine.block_queue)
    task = machine.spawn("app")
    drive(env, appender(machine, task, "/f", rounds=2))

    machine.fs.journal.committed_log.append(
        CommitRecord(
            tid=9999,
            committed_at=env.now,
            metadata_blocks=frozenset({1}),
            data_blocks=frozenset({424242}),  # never written
        )
    )
    report = recover(machine.fs, log)
    assert not report.invariant_ok
    assert report.violations == [(9999, [424242])]


def test_durability_log_tracks_successful_writes_only():
    from repro.block import BlockRequest
    from repro.block.request import WRITE
    from repro.proc import ProcessTable
    from repro.block.queue import BlockQueue

    env = Environment()
    table = ProcessTable()
    queue = BlockQueue(env, SSD(), Noop(), process_table=table)
    log = DurabilityLog(queue)
    task = table.spawn("t")
    request = BlockRequest(WRITE, 10, 4, task)
    queue.submit(request)
    env.run(until=request.done)
    assert log.written == {10, 11, 12, 13}
    assert log.contains(12) and not log.contains(14)
    assert len(log) == 4


def test_recovered_transactions_survive_while_running_discarded():
    env, machine = make_os(
        power_loss_at=3.0, fs_kwargs={"commit_interval": 0.5, "checkpoint_delay": 1e6}
    )
    log = DurabilityLog(machine.block_queue)
    task = machine.spawn("app")
    env.process(appender(machine, task, "/f", rounds=1000))
    env.run()
    assert env.halted

    journal = machine.fs.journal
    durable = len(journal.committed_log)
    report = crash_and_recover(machine, log)
    assert report.invariant_ok
    assert len(report.replayed_tids) == durable  # nothing checkpointed yet
