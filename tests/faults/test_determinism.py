"""Same seed + same plan must reproduce the fault sequence exactly."""

from repro import KB, MB, Environment, OS
from repro.devices import HDD
from repro.faults import EIO, FaultInjector, FaultPlan, FaultyDevice
from repro.metrics import BlockTracer
from repro.schedulers.noop import Noop
from repro.sim.rand import RandomStreams


def run_workload(seed, plan):
    """A small mixed read/write run; returns the full block trace."""
    env = Environment()
    injector = FaultInjector(env, plan, RandomStreams(seed))
    device = FaultyDevice(HDD(), injector)
    machine = OS(env, device=device, scheduler=Noop(), memory_bytes=256 * MB)
    tracer = BlockTracer(machine.block_queue)
    task = machine.spawn("app")

    def workload():
        handle = yield from machine.creat(task, "/f")
        for _ in range(8):
            yield from handle.append(64 * KB)
            try:
                yield from handle.fsync()
            except EIO:
                pass  # a failed fsync is part of the traced behaviour
        machine.cache.free_file(handle.inode.id)
        for i in range(8):
            try:
                yield from handle.pread(i * 8 * KB, 8 * KB)
            except EIO:
                pass

    proc = env.process(workload())
    env.run(until=proc)
    return tracer.records


PLAN_KWARGS = dict(read_error_prob=0.1, write_error_prob=0.05, stall_prob=0.0)


def normalize(records):
    """Strip absolute pids (global counters) but keep cause cardinality."""
    return [r._replace(causes=len(r.causes)) for r in records]


def test_same_seed_same_plan_identical_traces():
    first = normalize(run_workload(7, FaultPlan(**PLAN_KWARGS)))
    second = normalize(run_workload(7, FaultPlan(**PLAN_KWARGS)))
    assert first == second  # identical TraceRecords, statuses included
    assert len(first) > 0


def test_different_seed_differs():
    first = normalize(run_workload(7, FaultPlan(**PLAN_KWARGS)))
    second = normalize(run_workload(8, FaultPlan(**PLAN_KWARGS)))
    assert first != second


def test_empty_plan_matches_unwrapped_device():
    """Zero-cost default: a no-fault FaultyDevice changes nothing."""

    def run(wrap):
        env = Environment()
        device = HDD()
        if wrap:
            injector = FaultInjector(env, FaultPlan(), RandomStreams(0))
            device = FaultyDevice(device, injector, name=device.name)
        machine = OS(env, device=device, scheduler=Noop(), memory_bytes=256 * MB)
        tracer = BlockTracer(machine.block_queue)
        task = machine.spawn("app")

        def workload():
            handle = yield from machine.creat(task, "/f")
            for _ in range(4):
                yield from handle.append(128 * KB)
                yield from handle.fsync()

        proc = env.process(workload())
        env.run(until=proc)
        return tracer.records

    assert normalize(run(wrap=False)) == normalize(run(wrap=True))
