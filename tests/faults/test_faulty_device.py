"""Tests for the FaultyDevice wrapper: neutrality and injection."""

import pytest

from repro.devices import HDD, SSD, DeviceError
from repro.faults import FaultInjector, FaultPlan, FaultyDevice, MediumError
from repro.sim import Environment
from repro.sim.rand import RandomStreams


def wrap(inner, plan, seed=0):
    env = Environment()
    injector = FaultInjector(env, plan, RandomStreams(seed))
    return FaultyDevice(inner, injector)


def test_empty_plan_is_service_time_neutral():
    """With no plan the wrapper must be bit-identical to the raw device."""
    pattern = [("read", 0, 8), ("write", 4096, 64), ("read", 9000, 1),
               ("write", 4160, 64), ("read", 1, 8)]
    raw = HDD()
    wrapped = wrap(HDD(), FaultPlan())
    for op, block, nblocks in pattern * 5:
        assert wrapped.service_time(op, block, nblocks) == raw.service_time(op, block, nblocks)


def test_injected_error_raises_retryable_medium_error():
    device = wrap(SSD(), FaultPlan(write_error_prob=1.0, error_latency=0.02))
    with pytest.raises(MediumError) as info:
        device.service_time("write", 0, 8)
    assert info.value.retryable
    assert info.value.latency == 0.02
    assert isinstance(info.value, DeviceError)


def test_error_leaves_accounting_untouched():
    device = wrap(SSD(), FaultPlan(write_error_prob=1.0))
    with pytest.raises(MediumError):
        device.service_time("write", 0, 8)
    assert device.stats.writes == 0
    assert device.stats.busy_time == 0.0


def test_slow_factor_scales_service_time():
    inner1, inner2 = SSD(), SSD()
    plain = wrap(inner1, FaultPlan())
    slowed = wrap(inner2, FaultPlan(slow_factor=3.0))
    assert slowed.service_time("read", 0, 8) == pytest.approx(
        3.0 * plain.service_time("read", 0, 8)
    )


def test_stall_adds_latency():
    device = wrap(SSD(), FaultPlan(stall_prob=1.0, stall_duration=60.0))
    duration = device.service_time("read", 0, 1)
    assert duration > 60.0


def test_bounds_checked_before_injection():
    device = wrap(SSD(capacity_blocks=100), FaultPlan(read_error_prob=1.0))
    with pytest.raises(DeviceError) as info:
        device.service_time("read", 99, 2)
    assert not isinstance(info.value, MediumError)  # bounds, not media
    assert not info.value.retryable


def test_reads_and_writes_independent_probabilities():
    device = wrap(SSD(), FaultPlan(read_error_prob=1.0))
    with pytest.raises(MediumError):
        device.service_time("read", 0, 1)
    device.service_time("write", 0, 1)  # writes untouched
