"""Tests for FaultPlan validation and the empty-plan contract."""

import pytest

from repro.faults import FaultPlan, FaultWindow, SlowWindow


def test_default_plan_is_empty():
    assert FaultPlan().empty


def test_any_fault_mode_makes_plan_non_empty():
    assert not FaultPlan(read_error_prob=0.1).empty
    assert not FaultPlan(write_error_prob=0.1).empty
    assert not FaultPlan(error_windows=[FaultWindow(1, 2)]).empty
    assert not FaultPlan(slow_factor=2.0).empty
    assert not FaultPlan(slow_windows=[SlowWindow(1, 2, 3.0)]).empty
    assert not FaultPlan(stall_prob=0.01).empty
    assert not FaultPlan(power_loss_at=10.0).empty


def test_probabilities_validated():
    with pytest.raises(ValueError):
        FaultPlan(read_error_prob=1.5)
    with pytest.raises(ValueError):
        FaultPlan(write_error_prob=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(stall_prob=2.0)


def test_latency_and_factor_validated():
    with pytest.raises(ValueError):
        FaultPlan(error_latency=-1.0)
    with pytest.raises(ValueError):
        FaultPlan(slow_factor=0.5)
    with pytest.raises(ValueError):
        FaultPlan(stall_duration=-1.0)
    with pytest.raises(ValueError):
        FaultPlan(power_loss_at=0.0)


def test_windows_validated():
    with pytest.raises(ValueError):
        FaultPlan(error_windows=[FaultWindow(5, 5)])
    with pytest.raises(ValueError):
        FaultPlan(error_windows=[FaultWindow(1, 2, op="erase")])
    with pytest.raises(ValueError):
        FaultPlan(slow_windows=[SlowWindow(2, 1, 2.0)])
    with pytest.raises(ValueError):
        FaultPlan(slow_windows=[SlowWindow(1, 2, 0.9)])


def test_window_covers_half_open_interval():
    window = FaultWindow(1.0, 2.0)
    assert window.covers(1.0, "read")
    assert not window.covers(2.0, "read")
    scoped = FaultWindow(1.0, 2.0, op="write")
    assert scoped.covers(1.5, "write")
    assert not scoped.covers(1.5, "read")


def test_error_probability_by_op():
    plan = FaultPlan(read_error_prob=0.1, write_error_prob=0.2)
    assert plan.error_probability("read") == 0.1
    assert plan.error_probability("write") == 0.2
