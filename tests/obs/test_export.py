"""Span JSONL export, schema validation, and report rendering."""

import json

import pytest

from repro.obs import (
    SpanSchemaError,
    format_report,
    load_spans,
    validate_span,
    write_spans,
)

IO_SPAN = {
    "kind": "io",
    "id": 1,
    "op": "write",
    "block": 10,
    "nblocks": 4,
    "bytes": 16384,
    "submitter": "pdflush",
    "submitter_pid": 2,
    "sync": False,
    "metadata": False,
    "submit": 1.0,
    "dispatch": 1.5,
    "complete": 2.0,
    "queue_wait": 0.5,
    "device_time": 0.5,
    "cache_wait": 0.25,
    "status": "ok",
    "attempts": 1,
    "causes": [3],
    "cause_names": ["writer"],
}

SYSCALL_SPAN = {
    "kind": "syscall",
    "call": "fsync",
    "task": "writer",
    "pid": 3,
    "start": 0.0,
    "end": 0.01,
    "duration": 0.01,
    "nbytes": None,
    "causes": [3],
    "cause_names": ["writer"],
}


def test_validate_accepts_known_kinds():
    validate_span(IO_SPAN)
    validate_span(SYSCALL_SPAN)


def test_validate_rejects_unknown_kind():
    with pytest.raises(SpanSchemaError, match="unknown span kind"):
        validate_span({"kind": "mystery"})


def test_validate_rejects_missing_field():
    broken = dict(IO_SPAN)
    del broken["queue_wait"]
    with pytest.raises(SpanSchemaError, match="queue_wait"):
        validate_span(broken)


def test_validate_rejects_wrong_type():
    broken = dict(IO_SPAN, bytes="lots")
    with pytest.raises(SpanSchemaError, match="bytes"):
        validate_span(broken)


def test_validate_null_cache_wait_allowed():
    validate_span(dict(IO_SPAN, cache_wait=None))


def test_write_and_load_roundtrip(tmp_path):
    path = tmp_path / "t.spans.jsonl"
    spans = [IO_SPAN, SYSCALL_SPAN]
    assert write_spans(path, spans) == 2
    loaded = load_spans(path)
    assert loaded == spans


def test_write_spans_is_deterministic(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    write_spans(a, [IO_SPAN])
    write_spans(b, [dict(reversed(list(IO_SPAN.items())))])
    assert a.read_bytes() == b.read_bytes()


def test_load_rejects_corrupt_rows(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json\n")
    with pytest.raises(SpanSchemaError, match="not JSON"):
        load_spans(path)
    path.write_text(json.dumps({"kind": "io"}) + "\n")
    with pytest.raises(SpanSchemaError, match="missing field"):
        load_spans(path)


def test_format_report_renders_stages_and_causes():
    report = format_report([IO_SPAN, SYSCALL_SPAN], title="demo")
    assert "== demo ==" in report
    for stage in ("syscall", "cache", "journal", "queue", "device"):
        assert stage in report
    assert "writer" in report
    assert "cause-set attribution" in report


def test_format_report_by_cause_groups():
    report = format_report([IO_SPAN, SYSCALL_SPAN], by_cause=True)
    assert "-- writer --" in report
