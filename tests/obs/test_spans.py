"""SpanBuilder lifecycle correlation and cause-set proxy attribution.

The Figure 7 property the spans must preserve: I/O delegated to kernel
proxies (the writeback daemon, the journal commit task) is attributed
to the tasks *served*, never to the proxy that submitted it.
"""

from repro import KB, MB, Environment, OS, SSD
from repro.obs import SpanBuilder, latency_breakdown
from repro.schedulers import Noop


def make_traced_os(memory_bytes=256 * MB):
    env = Environment()
    machine = OS(env, device=SSD(), scheduler=Noop(), memory_bytes=memory_bytes)
    builder = SpanBuilder.attach(machine)
    return env, machine, builder


def drive(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def test_io_spans_cover_full_lifecycle():
    env, machine, builder = make_traced_os()
    task = machine.spawn("writer")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(1 * MB)
        yield from handle.fsync()

    drive(env, proc())
    io = [s for s in builder.spans if s["kind"] == "io"]
    assert io
    for span in io:
        assert span["complete"] >= span["dispatch"] >= span["submit"]
        assert span["queue_wait"] >= 0 and span["device_time"] >= 0
        assert span["status"] == "ok"
    # Data writes carry their pages' cache residency.
    writes = [s for s in io if s["op"] == "write" and not s["metadata"]]
    assert any(s["cache_wait"] is not None for s in writes)


def test_syscall_spans_match_calls():
    env, machine, builder = make_traced_os()
    task = machine.spawn("reader")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(64 * KB)
        yield from handle.fsync()
        yield from handle.pread(0, 64 * KB)

    drive(env, proc())
    sys_spans = [s for s in builder.spans if s["kind"] == "syscall"]
    calls = {s["call"] for s in sys_spans}
    assert {"creat", "write", "fsync", "read"} <= calls
    for span in sys_spans:
        assert span["task"] == "reader"
        assert span["duration"] >= 0


def test_writeback_delegation_attributed_to_dirtier():
    """pdflush-submitted writeback lands on the task that dirtied."""
    env, machine, builder = make_traced_os(memory_bytes=64 * MB)
    task = machine.spawn("dirtier")

    def proc():
        handle = yield from machine.creat(task, "/big")
        # 16 MB dirty in a 64 MB cache: over the 10% background ratio,
        # so the writeback daemon starts flushing on the dirtier's
        # behalf without any explicit fsync.
        yield from handle.append(16 * MB)

    drive(env, proc())
    env.run(until=env.now + 60.0)

    delegated = [
        s for s in builder.spans
        if s["kind"] == "io" and s["submitter"] == "pdflush"
    ]
    assert delegated, "expected background writeback I/O"
    for span in delegated:
        assert span["causes"] == [task.pid]
        assert span["cause_names"] == ["dirtier"]
    # The block-level submitter view and the cause view disagree —
    # exactly the information gap the cause tags close.
    assert all(span["submitter_pid"] != task.pid for span in delegated)


def test_journal_commit_attributed_to_joiners():
    """jbd2 commits are attributed to the fsyncing task (Figure 7)."""
    env, machine, builder = make_traced_os()
    task = machine.spawn("syncer")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(256 * KB)
        yield from handle.fsync()

    drive(env, proc())
    journal = [s for s in builder.spans if s["kind"] == "journal"]
    assert journal
    commit = journal[0]
    assert commit["causes"] == [task.pid]
    assert commit["cause_names"] == ["syncer"]
    assert not commit["aborted"]
    assert commit["end"] >= commit["start"]
    # Journal-submitted block I/O also lands on the joiner, not jbd2.
    jbd2_io = [
        s for s in builder.spans
        if s["kind"] == "io" and s["submitter"].startswith("jbd2")
    ]
    assert jbd2_io
    for span in jbd2_io:
        assert task.pid in span["causes"]


def test_latency_breakdown_stages_and_attribution():
    env, machine, builder = make_traced_os()
    task = machine.spawn("worker")

    def proc():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(1 * MB)
        yield from handle.fsync()

    drive(env, proc())
    breakdown = latency_breakdown(builder.spans, group_by="cause")
    assert set(breakdown["stages"]) == {"syscall", "cache", "journal", "queue", "device"}
    assert breakdown["stages"]["queue"]["count"] > 0
    assert breakdown["stages"]["device"]["p99"] >= breakdown["stages"]["device"]["p50"]
    assert "worker" in breakdown["by_cause"]
    assert "worker" in breakdown["groups"]
    assert breakdown["span_counts"]["io"] > 0


def test_builder_close_stops_collection():
    env, machine, builder = make_traced_os()
    task = machine.spawn("t")

    def write():
        handle = yield from machine.creat(task, "/f")
        yield from handle.append(64 * KB)
        yield from handle.fsync()

    drive(env, write())
    count = len(builder.spans)
    assert count > 0
    builder.close()

    def write_more():
        handle = yield from machine.open(task, "/f")
        yield from handle.append(64 * KB)
        yield from handle.fsync()

    drive(env, write_more())
    assert len(builder.spans) == count
