"""Tracing must be pure observation.

Two contracts: (1) a run with tracing enabled produces byte-identical
experiment JSON to one with the bus idle (no subscribers at all); and
(2) the merged span stream is identical whether cells run serially or
fanned across worker processes.
"""

import json

from repro.cli import _jsonable
from repro.experiments import runner
from repro.obs import validate_span, write_spans
from repro.units import KB, MB

#: Reduced-scale fig13 cells: two run sizes, short duration.
FIG13 = {"run_sizes": [16 * KB, 1 * MB], "duration": 2.0}


def _result_fingerprint(outcome) -> str:
    return json.dumps(_jsonable(outcome.result), sort_keys=True)


def test_traced_result_identical_to_untraced():
    plain = runner.run_experiment("fig13", FIG13, jobs=1)
    traced = runner.run_experiment("fig13", FIG13, jobs=1, trace=True)
    assert _result_fingerprint(plain) == _result_fingerprint(traced)
    assert not plain.spans
    assert traced.spans


def test_spans_validate_against_schema():
    traced = runner.run_experiment("fig13", FIG13, jobs=1, trace=True)
    assert traced.spans
    for span in traced.spans:
        validate_span(span)


def test_serial_and_parallel_spans_identical(tmp_path):
    serial = runner.run_experiment("fig13", FIG13, jobs=1, trace=True)
    parallel = runner.run_experiment("fig13", FIG13, jobs=2, trace=True)
    assert serial.spans == parallel.spans
    a, b = tmp_path / "serial.jsonl", tmp_path / "parallel.jsonl"
    write_spans(a, serial.spans)
    write_spans(b, parallel.spans)
    assert a.read_bytes() == b.read_bytes()
    assert _result_fingerprint(serial) == _result_fingerprint(parallel)
