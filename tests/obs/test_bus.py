"""StackBus mechanics: typed dispatch, legacy shims, zero-cost-off."""

import pytest

from repro import MB, Environment, OS, SSD
from repro.obs.bus import (
    EVENT_TYPES,
    BlockComplete,
    PageDirtied,
    StackBus,
    SyscallEnter,
)
from repro.schedulers import Noop


def make_os():
    env = Environment()
    machine = OS(env, device=SSD(), scheduler=Noop(), memory_bytes=256 * MB)
    return env, machine


def drive(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def write_some(env, machine, nbytes=1 * MB, path="/f"):
    task = machine.spawn("t")

    def proc():
        handle = yield from machine.creat(task, path)
        yield from handle.append(nbytes)
        yield from handle.fsync()

    drive(env, proc())
    return task


def test_subscribe_and_publish_in_order():
    bus = StackBus()
    seen = []
    bus.subscribe(SyscallEnter, lambda e: seen.append(("a", e.call)))
    bus.subscribe(SyscallEnter, lambda e: seen.append(("b", e.call)))
    bus.publish(SyscallEnter(0.0, None, "read", {}))
    assert seen == [("a", "read"), ("b", "read")]
    assert bus.published == 1


def test_unsubscribe_stops_delivery():
    bus = StackBus()
    seen = []
    unsub = bus.subscribe(SyscallEnter, seen.append)
    bus.publish(SyscallEnter(0.0, None, "read", {}))
    unsub()
    unsub()  # idempotent
    bus.publish(SyscallEnter(1.0, None, "read", {}))
    assert len(seen) == 1


def test_unknown_event_type_rejected():
    bus = StackBus()
    with pytest.raises(ValueError, match="unknown event type"):
        bus.subscribe(int, lambda e: None)


def test_subscribe_all_covers_every_type():
    bus = StackBus()
    seen = []
    unsub = bus.subscribe_all(seen.append)
    assert all(bus.active(etype) for etype in EVENT_TYPES)
    unsub()
    assert not any(bus.active(etype) for etype in EVENT_TYPES)


def test_untraced_stack_publishes_nothing():
    """Zero-cost-off: with no subscribers no event is ever dispatched."""
    env, machine = make_os()
    write_some(env, machine)
    assert machine.block_queue.completed > 0
    assert machine.bus.published == 0


def test_every_layer_shares_one_bus():
    env, machine = make_os()
    assert machine.cache.bus is machine.bus
    assert machine.block_queue.bus is machine.bus
    assert machine.fs.bus is machine.bus
    assert machine.fs.journal.bus is machine.bus


def test_legacy_buffer_dirty_hook_is_bus_backed():
    env, machine = make_os()
    hook_pages, bus_pages = [], []
    machine.cache.buffer_dirty_hook = lambda page, old: hook_pages.append(page)
    machine.bus.subscribe(PageDirtied, lambda e: bus_pages.append(e.page))
    write_some(env, machine)
    assert hook_pages and bus_pages
    assert hook_pages == bus_pages


def test_legacy_hook_single_slot_replacement():
    env, machine = make_os()
    first, second = [], []
    machine.cache.buffer_dirty_hook = lambda page, old: first.append(page)
    machine.cache.buffer_dirty_hook = lambda page, old: second.append(page)
    assert machine.cache.buffer_dirty_hook is not None
    write_some(env, machine)
    assert not first  # replaced before the run: one-slot semantics
    assert second
    machine.cache.buffer_dirty_hook = None
    assert machine.cache.buffer_dirty_hook is None


def test_completion_listener_shim_append_remove():
    env, machine = make_os()
    seen = []
    listener = seen.append
    machine.block_queue.completion_listeners.append(listener)
    assert len(machine.block_queue.completion_listeners) == 1
    assert list(machine.block_queue.completion_listeners) == [listener]
    write_some(env, machine)
    assert seen
    count = len(seen)
    machine.block_queue.completion_listeners.remove(listener)
    write_some(env, machine, path="/g")
    assert len(seen) == count
    with pytest.raises(ValueError):
        machine.block_queue.completion_listeners.remove(listener)


def test_listeners_and_bus_subscribers_share_dispatch():
    env, machine = make_os()
    order = []
    machine.block_queue.completion_listeners.append(
        lambda request: order.append("legacy")
    )
    machine.bus.subscribe(BlockComplete, lambda e: order.append("bus"))
    write_some(env, machine)
    assert "legacy" in order and "bus" in order
    # Subscription order == dispatch order: legacy attached first.
    assert order[0] == "legacy" and order[1] == "bus"
