"""Documentation hygiene: every public module and class is documented."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")  # importing it would run the CLI
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_documented(module_name):
    module = importlib.import_module(module_name)
    for name, obj in vars(module).items():
        if name.startswith("_") or not inspect.isclass(obj):
            continue
        if obj.__module__ != module_name:
            continue  # re-export
        assert obj.__doc__, f"{module_name}.{name} lacks a docstring"


def test_examples_have_docstrings_and_main():
    import pathlib

    examples = pathlib.Path(__file__).resolve().parent.parent / "examples"
    scripts = sorted(examples.glob("*.py"))
    assert len(scripts) >= 3, "the paper reproduction promises >= 3 examples"
    for script in scripts:
        source = script.read_text()
        assert source.lstrip().startswith(("#!", '"""')), f"{script.name}: no header"
        assert "def main" in source, f"{script.name}: no main()"
        assert '__main__' in source, f"{script.name}: not runnable"


def test_design_and_experiments_docs_exist():
    import pathlib

    root = pathlib.Path(__file__).resolve().parent.parent
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        path = root / name
        assert path.exists(), f"{name} missing"
        assert len(path.read_text()) > 1000, f"{name} looks empty"
