"""simlint rule fixtures: one positive and one negative per rule.

Every SIMnnn rule gets a minimal source snippet that must trigger it
and a closely-matched snippet that must not — the negative is the
"fixed" form the rule's fix-it text recommends, so these tests also pin
that the recommended fix actually silences the rule.  Suppression
comments (trailing and region form), the SIM000 syntax-error path,
rule selection, and both reporters are covered below.
"""

import json

from repro.analysis.simlint import (
    RULES,
    build_class_registry,
    format_json,
    format_text,
    lint_paths,
    lint_source,
)


def rules_in(source, **kwargs):
    return [v.rule for v in lint_source(source, **kwargs)]


# -- SIM001: wall clock / unseeded random -----------------------------------


def test_sim001_flags_wall_clock_and_global_random():
    source = (
        "import time\n"
        "import random\n"
        "def f():\n"
        "    t = time.time()\n"
        "    r = random.random()\n"
        "    return t + r\n"
    )
    assert rules_in(source) == ["SIM001", "SIM001"]


def test_sim001_flags_from_import_alias():
    source = (
        "from time import perf_counter as tick\n"
        "def f():\n"
        "    return tick()\n"
    )
    violations = lint_source(source)
    assert [v.rule for v in violations] == ["SIM001"]
    assert "perf_counter" in violations[0].message


def test_sim001_ignores_virtual_clock_and_seeded_rng():
    source = (
        "import random\n"
        "def f(env):\n"
        "    rng = random.Random(7)\n"
        "    return env.now + rng.random()\n"
    )
    assert rules_in(source) == []


# -- SIM002: set iteration ---------------------------------------------------


def test_sim002_flags_set_literal_call_and_keys():
    source = (
        "def f(items, d):\n"
        "    for x in {1, 2, 3}:\n"
        "        pass\n"
        "    for x in set(items):\n"
        "        pass\n"
        "    return [k for k in d.keys()]\n"
    )
    assert rules_in(source) == ["SIM002", "SIM002", "SIM002"]


def test_sim002_ignores_sorted_and_fromkeys():
    source = (
        "def f(items, d):\n"
        "    for x in sorted(set(items)):\n"
        "        pass\n"
        "    for x in dict.fromkeys(items):\n"
        "        pass\n"
        "    for k in d:\n"
        "        pass\n"
    )
    assert rules_in(source) == []


# -- SIM003: id() in ordering ------------------------------------------------


def test_sim003_flags_id_in_sort_key_and_heap_entry():
    source = (
        "from heapq import heappush\n"
        "def f(items, heap, obj, t):\n"
        "    a = sorted(items, key=lambda x: id(x))\n"
        "    heappush(heap, (t, id(obj)))\n"
        "    return a\n"
    )
    assert "SIM003" in rules_in(source)
    assert rules_in(source).count("SIM003") == 2


def test_sim003_ignores_id_outside_ordering():
    source = (
        "def f(obj):\n"
        "    token = id(obj)\n"
        "    return token\n"
    )
    assert rules_in(source) == []


# -- SIM004: float arithmetic in a tie-break --------------------------------


def test_sim004_flags_float_arith_in_tiebreak():
    source = (
        "from heapq import heappush\n"
        "def f(heap, t, x):\n"
        "    heappush(heap, (t, x * 0.5))\n"
    )
    assert rules_in(source) == ["SIM004"]


def test_sim004_ignores_leading_time_and_integral_tiebreaks():
    source = (
        "from heapq import heappush\n"
        "def f(heap, t, seq):\n"
        "    heappush(heap, (t + 0.5, seq))\n"
        "    heappush(heap, (t, seq + 1))\n"
    )
    assert rules_in(source) == []


# -- SIM005: scheduling internals --------------------------------------------


def test_sim005_flags_foreign_queue_pokes():
    source = (
        "def f(env, entry):\n"
        "    env._queue.append(entry)\n"
        "    env._next = entry\n"
    )
    assert rules_in(source) == ["SIM005", "SIM005"]


def test_sim005_ignores_self_access():
    source = (
        "class Environment:\n"
        "    def kick(self, entry):\n"
        "        self._queue.append(entry)\n"
        "        self._next = entry\n"
    )
    assert rules_in(source) == []


# -- SIM006: mutable defaults ------------------------------------------------


def test_sim006_flags_list_dict_set_defaults():
    source = (
        "def f(xs=[], m={}):\n"
        "    pass\n"
        "def g(*, s=set()):\n"
        "    pass\n"
    )
    assert rules_in(source) == ["SIM006", "SIM006", "SIM006"]


def test_sim006_ignores_none_and_immutable_defaults():
    source = (
        "def f(xs=None, pair=(), name='x'):\n"
        "    xs = list(xs or ())\n"
        "    return xs, pair, name\n"
    )
    assert rules_in(source) == []


# -- SIM007: unguarded bus publish -------------------------------------------


def test_sim007_flags_unguarded_publish():
    source = (
        "def f(self, Evt):\n"
        "    self.bus.publish(Evt(1))\n"
    )
    assert rules_in(source) == ["SIM007"]


def test_sim007_ignores_guarded_publish():
    source = (
        "def f(self, Evt):\n"
        "    if self._sub_start:\n"
        "        self.bus.publish(Evt(1))\n"
    )
    assert rules_in(source) == []


# -- SIM008: unslotted hot-loop class ----------------------------------------


def test_sim008_flags_unslotted_class_instantiated_in_loop():
    source = (
        "class Record:\n"
        "    def __init__(self, i):\n"
        "        self.i = i\n"
        "def f():\n"
        "    for i in range(100):\n"
        "        Record(i)\n"
    )
    assert rules_in(source) == ["SIM008"]


def test_sim008_ignores_slotted_exempt_and_unlooped():
    source = (
        "from typing import NamedTuple\n"
        "from dataclasses import dataclass\n"
        "class Slotted:\n"
        "    __slots__ = ('i',)\n"
        "    def __init__(self, i):\n"
        "        self.i = i\n"
        "class Point(NamedTuple):\n"
        "    x: int\n"
        "@dataclass\n"
        "class Cfg:\n"
        "    n: int = 0\n"
        "class Plain:\n"
        "    pass\n"
        "def f():\n"
        "    for i in range(100):\n"
        "        Slotted(i)\n"
        "        Point(i)\n"
        "        Cfg(i)\n"
        "    Plain()\n"
    )
    assert rules_in(source) == []


def test_sim008_uses_cross_file_registry():
    defs = "class Other:\n    def __init__(self):\n        self.x = 1\n"
    use = "def f():\n    for i in range(10):\n        Other()\n"
    # Without the registry the class is unknown -> no finding.
    assert rules_in(use) == []
    registry = build_class_registry([("defs.py", defs), ("use.py", use)])
    assert rules_in(use, registry=registry) == ["SIM008"]


# -- suppression comments ----------------------------------------------------


def test_trailing_suppression_silences_named_rule():
    source = (
        "def f(items):\n"
        "    for x in set(items):  # simlint: disable=SIM002\n"
        "        pass\n"
    )
    assert rules_in(source) == []


def test_trailing_suppression_is_rule_specific():
    source = (
        "def f(items):\n"
        "    for x in set(items):  # simlint: disable=SIM001\n"
        "        pass\n"
    )
    assert rules_in(source) == ["SIM002"]


def test_bare_disable_suppresses_all_rules_on_line():
    source = "def f(xs=[], m={}):  # simlint: disable\n    pass\n"
    assert rules_in(source) == []


def test_region_suppression_until_enable():
    source = (
        "def f(env, entry, other):\n"
        "    # simlint: disable=SIM005\n"
        "    env._queue.append(entry)\n"
        "    # simlint: enable=SIM005\n"
        "    other._queue.append(entry)\n"
    )
    violations = lint_source(source)
    assert [(v.rule, v.line) for v in violations] == [("SIM005", 5)]


def test_unclosed_region_runs_to_end_of_file():
    source = (
        "def f(env, entry):\n"
        "    # simlint: disable=SIM005\n"
        "    env._queue.append(entry)\n"
        "    env._next = entry\n"
    )
    assert rules_in(source) == []


# -- SIM000, selection, entry points ----------------------------------------


def test_syntax_error_reports_sim000():
    violations = lint_source("def broken(:\n", path="bad.py")
    assert len(violations) == 1
    v = violations[0]
    assert v.rule == "SIM000"
    assert v.path == "bad.py"
    assert "syntax error" in v.message


def test_select_restricts_rules():
    source = (
        "import time\n"
        "def f(items):\n"
        "    t = time.time()\n"
        "    for x in set(items):\n"
        "        pass\n"
        "    return t\n"
    )
    assert rules_in(source) == ["SIM001", "SIM002"]
    assert rules_in(source, select={"SIM002"}) == ["SIM002"]


def test_lint_paths_walks_directories(tmp_path):
    (tmp_path / "ok.py").write_text("def f(env):\n    return env.now\n")
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "bad.py").write_text(
        "def f(items):\n    for x in set(items):\n        pass\n"
    )
    violations = lint_paths([str(tmp_path)])
    assert [v.rule for v in violations] == ["SIM002"]
    assert violations[0].path.endswith("bad.py")


def test_violation_carries_why_and_fixit():
    [v] = lint_source("def f(xs=[]):\n    pass\n")
    assert v.why == RULES["SIM006"].why
    assert v.fixit == RULES["SIM006"].fixit
    assert v.line == 1 and v.col > 0


# -- reporters ---------------------------------------------------------------


def test_format_text_clean_and_with_findings():
    assert format_text([]) == "simlint: clean"
    violations = lint_source(
        "def f(items):\n    for x in set(items):\n        pass\n",
        path="mod.py",
    )
    report = format_text(violations)
    assert "mod.py:2:" in report
    assert "SIM002" in report
    assert "why:" in report and "fix:" in report
    assert "1 violation(s)" in report


def test_format_json_round_trips():
    violations = lint_source("def f(xs=[]):\n    pass\n", path="mod.py")
    payload = json.loads(format_json(violations))
    assert payload == [
        {
            "rule": "SIM006",
            "path": "mod.py",
            "line": 1,
            "col": payload[0]["col"],
            "message": payload[0]["message"],
            "why": RULES["SIM006"].why,
            "fixit": RULES["SIM006"].fixit,
        }
    ]
    assert format_json([]) == "[]"
