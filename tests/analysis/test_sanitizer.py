"""Runtime sanitizer: each invariant is deliberately broken and caught.

Structure mirrors the sanitizer's three attachment points:

- :class:`SanitizedEnvironment` — equivalence with the production
  kernel on the cohort-dispatch scenarios, then each check (negative
  delay, monotonic clock, cohort order) tripped on purpose.  The
  cohort-order test reintroduces the pre-fix ``_run_cohort`` (the PR 8
  bug: mid-cohort interloper checks that never consult the front
  slot) in a subclass and asserts the sanitizer converts the silent
  reordering into a :class:`SanitizerError`.
- :class:`StackSanitizer` — a real built machine with each bus-level
  invariant forced false (slot bound, request conservation, token
  conservation) plus the ``close()`` detach contract.
- the shard layer — conservative-sync causality and duplicate
  sequence-number detection.
"""

import types

import pytest

from repro.analysis.sanitizer import (
    SanitizedEnvironment,
    SanitizerError,
    StackSanitizer,
    attach_sanitizer,
    check_delivery,
)
from repro.config import StackConfig
from repro.experiments.common import (
    build_stack,
    default_sanitize,
    drive,
    make_environment,
    set_default_sanitize,
)
from repro.obs.bus import BlockComplete, DeviceStart
from repro.sim import Environment
from repro.sim.events import NORMAL
from repro.sim.shard.channel import InterShardChannel
from repro.sim.shard.message import ShardMessage
from repro.units import KB, MB

# -- SanitizedEnvironment: equivalence with the production kernel -----------


def _front_slot_scenario(env):
    """The PR 8 regression scenario: a process spawned mid-cohort parks
    an URGENT Initialize in the front slot; it must run before the
    cohort remainder."""
    fired = []

    def body():
        fired.append("started")
        return
        yield  # pragma: no cover - makes this a generator

    def spawn(ev):
        fired.append(ev.value)
        env.process(body())

    env.timeout(1, value="a").callbacks.append(spawn)
    env.timeout(1, value="b").callbacks.append(lambda ev: fired.append(ev.value))
    return fired


def test_sanitized_env_matches_production_order():
    results = []
    for env_class in (Environment, SanitizedEnvironment):
        env = env_class()
        fired = _front_slot_scenario(env)
        env.run()
        results.append(fired)
    assert results[0] == results[1] == ["a", "started", "b"]


def test_sanitized_env_cohort_order_matches_production():
    results = []
    for env_class in (Environment, SanitizedEnvironment):
        env = env_class()
        fired = []
        for i in range(20):
            env.timeout(1, value=i).callbacks.append(
                lambda ev: fired.append(ev.value)
            )
        env.run()
        results.append(fired)
    assert results[0] == results[1] == list(range(20))


def test_sanitized_env_until_event_mid_cohort_resumes():
    env = SanitizedEnvironment()
    fired = []
    env.timeout(1, value=0).callbacks.append(lambda ev: fired.append(ev.value))
    stop = env.timeout(1)
    env.timeout(1, value=2).callbacks.append(lambda ev: fired.append(ev.value))
    env.run(until=stop)
    assert fired == [0]
    env.run()
    assert fired == [0, 2]
    assert env.now == 1


def test_sanitized_env_until_time_and_empty_schedule():
    env = SanitizedEnvironment()
    env.timeout(3)
    env.run(until=2.0)
    assert env.now == 2.0
    env.run()  # drains the remaining timeout, then EmptySchedule -> None
    assert env.now == 3.0


# -- SanitizedEnvironment: each invariant tripped on purpose ----------------


def test_negative_delay_schedule_raises():
    env = SanitizedEnvironment()
    with pytest.raises(SanitizerError, match="negative delay"):
        env.schedule(env.event(), delay=-1.0)


def test_negative_delay_passes_on_production_subclassed_check_only():
    # The production Environment has no such check; the guard is what
    # the sanitizer adds.  Zero delay stays legal on both.
    env = SanitizedEnvironment()
    env.schedule(env.event(), delay=0.0)


def test_monotonic_clock_violation_raises():
    env = SanitizedEnvironment()
    env.timeout(5)
    env.run()
    assert env.now == 5
    with pytest.raises(SanitizerError, match="monotonic clock"):
        env._dispatch((1.0, NORMAL, 999_999, env.event()))


class BuggyCohortEnv(SanitizedEnvironment):
    """SanitizedEnvironment with the PR 8 cohort bug reintroduced.

    This ``_run_cohort`` is the pre-fix loop: same-instant interloper
    checks consult only the heap head, never the front slot — so an
    URGENT Initialize parked in the slot mid-cohort is dispatched
    *after* the cohort remainder.  The inherited checked ``_dispatch``
    must turn that silent reordering into a SanitizerError.
    """

    __slots__ = ()

    def _run_cohort(self, entry, tnow):
        from heapq import heappop, heappush

        queue = self._queue
        cohort = [entry]
        nxt = self._next
        if nxt is not None and nxt[0] == tnow:
            heappush(queue, nxt)
            self._next = None
        while queue and queue[0][0] == tnow:
            cohort.append(heappop(queue))
        i = 0
        n = len(cohort)
        try:
            while i < n:
                if self._halted:
                    break
                # BUG (pre-fix): no check of self._next here.
                if queue and queue[0][0] == tnow and queue[0] < cohort[i]:
                    self._dispatch(heappop(queue))
                    continue
                entry = cohort[i]
                i += 1
                self._dispatch(entry)
        except BaseException:
            while i < n:
                heappush(queue, cohort[i])
                i += 1
            raise


def test_reintroduced_cohort_bug_is_caught():
    env = BuggyCohortEnv()
    fired = _front_slot_scenario(env)
    with pytest.raises(SanitizerError, match="cohort order") as excinfo:
        env.run()
    # The buggy kernel dispatched "b" while the URGENT Initialize sat
    # in the front slot; the error names both entries and the history
    # shows the dispatches that led up to it.
    err = excinfo.value
    assert "front slot" in str(err)
    assert "dispatching" in err.context and "pending" in err.context
    assert err.context["pending"][1] == 0  # URGENT priority
    assert err.history, "recent-dispatch snippet missing"
    assert fired == ["a"]  # "b" never ran; the violation fired first


def test_correct_kernel_passes_same_scenario():
    env = SanitizedEnvironment()
    fired = _front_slot_scenario(env)
    env.run()
    assert fired == ["a", "started", "b"]


def test_sanitizer_error_formats_history_and_context():
    err = SanitizerError(
        "boom",
        history=[(1.0, 1, 7, "Timeout")],
        context={"k": "v"},
    )
    text = str(err)
    assert "boom" in text
    assert "context: k='v'" in text
    assert "t=1.0 priority=1 eid=7 Timeout" in text
    assert isinstance(err, AssertionError)


# -- StackSanitizer: machine-level invariants --------------------------------


def _sanitized_machine():
    # sanitize=False pins the session default off (REPRO_SANITIZE=1 CI
    # runs would otherwise attach a second sanitizer in build_node that
    # close() below wouldn't detach); these tests attach their own.
    env, machine = build_stack(
        StackConfig(
            device="ssd",
            scheduler="split-token",
            memory_bytes=64 * MB,
            sanitize=False,
        )
    )
    sanitizer = attach_sanitizer(machine)
    return env, machine, sanitizer


def _fake_complete(env, request_id=1):
    request = types.SimpleNamespace(id=request_id, failed=False)
    return BlockComplete(time=env.now, request=request)


def test_slot_bound_violation_detected():
    env, machine, _san = _sanitized_machine()
    device = machine.block_queue.device
    device.active = device.channels + 1
    with pytest.raises(SanitizerError, match="slot bound") as excinfo:
        machine.bus.publish(
            DeviceStart(
                time=env.now,
                device=device.name,
                op="read",
                block=0,
                nblocks=1,
                attempt=1,
            )
        )
    assert excinfo.value.context["active"] == device.channels + 1


def test_request_conservation_violation_detected():
    env, machine, _san = _sanitized_machine()
    queue = machine.block_queue
    queue.completed = queue.submitted + 1  # a done event "fired twice"
    with pytest.raises(SanitizerError, match="conservation"):
        machine.bus.publish(_fake_complete(env))


def test_token_over_refund_detected():
    env, machine, _san = _sanitized_machine()
    task = machine.spawn("t")
    bucket = machine.scheduler.set_limit(task, rate=100.0)
    bucket.refund(50.0)  # never charged: refunded_total > charged_total
    with pytest.raises(SanitizerError, match="refunded more") as excinfo:
        machine.bus.publish(_fake_complete(env))
    assert excinfo.value.context["refunded"] == pytest.approx(50.0)


def test_token_balance_over_cap_detected():
    env, machine, _san = _sanitized_machine()
    task = machine.spawn("t")
    bucket = machine.scheduler.set_limit(task, rate=100.0, cap=10.0)
    bucket._balance = 25.0  # above the burst cap
    with pytest.raises(SanitizerError, match="burst cap"):
        machine.bus.publish(_fake_complete(env))


def test_clean_machine_passes_all_checks():
    env, machine, _san = _sanitized_machine()
    task = machine.spawn("t")
    machine.scheduler.set_limit(task, rate=100.0)

    def work():
        handle = yield from machine.creat(task, "/f")
        yield from handle.write(64 * KB)
        handle.seek(0)
        yield from handle.read(16 * KB)

    drive(env, work())  # no SanitizerError


def test_close_detaches_subscriptions():
    env, machine, sanitizer = _sanitized_machine()
    device = machine.block_queue.device
    device.active = device.channels + 1
    sanitizer.close()
    machine.bus.publish(  # no subscriber left; nothing raises
        DeviceStart(
            time=env.now,
            device=device.name,
            op="read",
            block=0,
            nblocks=1,
            attempt=1,
        )
    )
    sanitizer.close()  # idempotent


def test_build_node_attaches_sanitizer_when_config_asks():
    env, machine = build_stack(
        StackConfig(
            device="ssd",
            scheduler="split-token",
            memory_bytes=64 * MB,
            sanitize=True,
        )
    )
    assert isinstance(env, SanitizedEnvironment)
    assert any(
        isinstance(getattr(fn, "__self__", None), StackSanitizer)
        for fn in machine.bus.listeners(BlockComplete)
    )


# -- session flag and config plumbing ----------------------------------------


def test_make_environment_respects_flag_and_session_default():
    assert isinstance(make_environment(True), SanitizedEnvironment)
    env = make_environment(False)
    assert isinstance(env, Environment)
    assert not isinstance(env, SanitizedEnvironment)
    previous = default_sanitize()
    try:
        set_default_sanitize(True)
        assert isinstance(make_environment(), SanitizedEnvironment)
        assert isinstance(make_environment(False), Environment)
        set_default_sanitize(False)
        assert not isinstance(make_environment(), SanitizedEnvironment)
    finally:
        set_default_sanitize(previous)


def test_stack_config_round_trips_sanitize():
    config = StackConfig(sanitize=True)
    assert config.to_dict()["sanitize"] is True
    assert StackConfig.from_dict(config.to_dict()).sanitize is True
    assert StackConfig().sanitize is None  # inherit the session default


def test_sanitized_stack_results_match_plain():
    def run_once(sanitize):
        env, machine = build_stack(
            StackConfig(
                device="ssd",
                scheduler="split-token",
                memory_bytes=64 * MB,
                sanitize=sanitize,
            )
        )
        task = machine.spawn("w")

        def work():
            handle = yield from machine.creat(task, "/f")
            yield from handle.write(256 * KB)
            handle.seek(0)
            n = yield from handle.read(64 * KB)
            return n

        value = drive(env, work())
        queue = machine.block_queue
        return (value, env.now, queue.submitted, queue.completed, queue.failed)

    assert run_once(False) == run_once(True)


# -- shard layer: causality and duplicate sequences --------------------------


def _message(arrival, src=0, seq=0, dst=1):
    return ShardMessage(
        arrival=arrival,
        src_node=src,
        seq=seq,
        dst_node=dst,
        kind="chunk",
        payload={},
    )


def test_check_delivery_rejects_past_arrivals():
    message = _message(arrival=4.0, src=2, seq=9)
    with pytest.raises(SanitizerError, match="causality") as excinfo:
        check_delivery(5.0, 4.0, message)
    context = excinfo.value.context
    assert context["src_node"] == 2
    assert context["seq"] == 9
    assert context["shard_now"] == 5.0


def test_check_delivery_allows_now_and_future():
    message = _message(arrival=5.0)
    check_delivery(5.0, 5.0, message)
    check_delivery(5.0, 6.0, message)


def test_channel_detects_duplicate_sequence_when_sanitized():
    channel = InterShardChannel(epoch=1.0, sanitize=True)
    message = _message(arrival=2.0)
    channel.push([message])
    with pytest.raises(SanitizerError, match="duplicate") as excinfo:
        channel.push([message])
    assert excinfo.value.context["seq"] == 0


def test_channel_without_sanitize_has_no_duplicate_tracking():
    channel = InterShardChannel(epoch=1.0)
    message = _message(arrival=2.0)
    channel.push([message])
    channel.push([message])  # production behaviour untouched
    assert channel.pending_count() == 2
