"""Smoke tests for repr/debug output (useful in logs, never crashing)."""

from repro.block.request import BlockRequest, READ
from repro.cache.page import PageKey
from repro.core.tags import CauseSet
from repro.devices import DeviceStats, HDD
from repro.fs.inode import Inode
from repro.fs.journal import Transaction
from repro.proc import Task
from repro.sim import Environment


def test_reprs_do_not_crash_and_carry_identity():
    task = Task("worker", priority=2)
    assert "worker" in repr(task)

    causes = CauseSet([3, 1, 2])
    assert repr(causes) == "CauseSet([1, 2, 3])"

    request = BlockRequest(READ, 5, 2, task)
    text = repr(request)
    assert "read" in text and "worker" in text

    inode = Inode("/x", is_dir=False)
    assert "/x" in repr(inode)

    env = Environment()
    txn = Transaction(env)
    assert "running" in repr(txn)

    stats = DeviceStats()
    assert "reads=0" in repr(stats)


def test_page_repr_reflects_state():
    env = Environment()
    from repro.cache.cache import PageCache
    from repro.core.tags import TagManager
    from repro.units import MB

    cache = PageCache(env, TagManager(), memory_bytes=16 * MB)
    page = cache.mark_dirty(PageKey(1, 2), Task("t"))
    assert "dirty" in repr(page)
    page.write_submitted()
    assert "wb" in repr(page)


def test_inode_allocated_fraction():
    inode = Inode("/f")
    inode.size = 4 * 4096
    assert inode.allocated_fraction() == 0.0
    inode.map_block(0, 100)
    inode.map_block(1, 101)
    assert inode.allocated_fraction() == 0.5
    empty = Inode("/e")
    assert empty.allocated_fraction() == 1.0


def test_device_stats_totals():
    disk = HDD()
    disk.service_time("read", 0, 2)
    disk.service_time("write", 10, 3)
    assert disk.stats.total_requests == 2
    assert disk.stats.total_bytes == 5 * 4096
