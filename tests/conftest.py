"""Suite-wide fixtures: a per-test wall-clock timeout.

The chaos campaign exists to prove fault plans can't hang the
simulation; this guard proves the *test suite* can't hang CI while
saying so.  Every test gets a SIGALRM-based wall-clock budget
(pytest-timeout without the dependency — the image deliberately keeps
the toolchain minimal).  Override per test with
``@pytest.mark.timeout(seconds)``, or suite-wide with the
``REPRO_TEST_TIMEOUT`` environment variable; ``0`` disables the guard
(useful under debuggers, whose breakpoints would otherwise trip it).

SIGALRM only exists on Unix main threads; elsewhere the fixture is a
silent no-op rather than a skip, so the suite still runs.
"""

import os
import signal
import time

import pytest

DEFAULT_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "120"))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): override the per-test wall-clock timeout "
        "(default %ss; see tests/conftest.py)" % DEFAULT_TIMEOUT,
    )


@pytest.fixture(autouse=True)
def _test_timeout(request):
    marker = request.node.get_closest_marker("timeout")
    seconds = float(marker.args[0]) if marker and marker.args else DEFAULT_TIMEOUT
    if seconds <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _timed_out(signum, frame):
        raise TimeoutError(
            f"{request.node.nodeid} exceeded the {seconds}s wall-clock "
            f"timeout (set REPRO_TEST_TIMEOUT or @pytest.mark.timeout "
            f"to adjust)"
        )

    previous = signal.signal(signal.SIGALRM, _timed_out)
    # setitimer, not alarm(): sub-second budgets and no rounding.  Its
    # return value is any timer a nested harness (an outer pytest, a
    # watchdog wrapper) already had pending — re-arm it on exit with
    # the elapsed test time subtracted, instead of silently zeroing
    # the outer deadline.
    outer_delay, outer_interval = signal.setitimer(signal.ITIMER_REAL, seconds)
    started = time.monotonic()
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if outer_delay:
            remaining = outer_delay - (time.monotonic() - started)
            # An already-expired outer deadline still fires (promptly):
            # setitimer(0) would instead cancel it.
            signal.setitimer(
                signal.ITIMER_REAL, max(remaining, 1e-6), outer_interval
            )
