"""Tests for tasks and the process table."""

import pytest

from repro.proc import DEFAULT_PRIORITY, ProcessTable, Task


def test_task_gets_unique_pid():
    a, b = Task("a"), Task("b")
    assert a.pid != b.pid


def test_task_default_priority_is_four():
    assert Task("t").priority == DEFAULT_PRIORITY == 4


def test_task_priority_validated():
    with pytest.raises(ValueError):
        Task("t", priority=8)
    with pytest.raises(ValueError):
        Task("t", priority=-1)


def test_idle_class_flag():
    assert Task("t", idle_class=True).idle_class
    assert not Task("t").idle_class


def test_process_table_spawn_and_get():
    table = ProcessTable()
    task = table.spawn("worker", priority=2)
    assert table.get(task.pid) is task
    assert task.priority == 2
    assert len(table) == 1


def test_process_table_get_missing_returns_none():
    assert ProcessTable().get(999999) is None


def test_process_table_iterates_tasks():
    table = ProcessTable()
    names = {"a", "b", "c"}
    for name in names:
        table.spawn(name)
    assert {task.name for task in table} == names


def test_kernel_flag_marks_helper_tasks():
    table = ProcessTable()
    pdflush = table.spawn("pdflush", kernel=True)
    assert pdflush.kernel
    assert not table.spawn("app").kernel
