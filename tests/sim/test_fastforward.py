"""Analytical fast-forward: detection, replay, drop-back, inertness.

The controller (repro.sim.fastforward) may only replay a syscall when
doing so is observationally safe: same simulated time, same tenant
accounting, same results.  These tests pin the engagement rules — a
steady stream replays, any transient drops it back to event-accurate
execution, fault-injected stacks never get a controller — and the
inertness guarantee that an off-by-default stack carries no trace of
the feature.
"""

import pytest

from repro.config import StackConfig
from repro.experiments import common
from repro.experiments.common import build_stack, drive
from repro.obs.bus import WritebackBatch
from repro.sim.fastforward import STEADY_THRESHOLD
from repro.units import MB, PAGE_SIZE
from repro.workloads import prefill_file


def _stream_stack(fast_forward, **overrides):
    """A small stack with a 16 MB prefilled file ready to stream."""
    config = StackConfig(
        device="hdd", memory_bytes=64 * MB, fast_forward=fast_forward, **overrides
    )
    env, machine = build_stack(config)
    task = machine.spawn("setup")
    drive(env, prefill_file(machine, task, "/data", 16 * MB, drop=False))
    return env, machine


def _read_stream(machine, task, nbytes=1 * MB, calls=None):
    """Sequentially read /data, wrapping; stop after *calls* reads."""
    handle = yield from machine.open(task, "/data")
    size = handle.inode.size
    offset = 0
    done = 0
    while calls is None or done < calls:
        n = yield from handle.pread(offset, min(nbytes, size - offset))
        offset = (offset + n) % size
        done += 1
    return done


# -- engagement -----------------------------------------------------------


def test_steady_read_stream_replays():
    env, machine = _stream_stack(fast_forward=True)
    assert machine.fastforward is not None
    reader = machine.spawn("reader")
    drive(env, _read_stream(machine, reader, calls=12))
    stats = machine.fastforward.summary()
    # The first STEADY_THRESHOLD calls measure; the rest of the pass
    # replays (16 reads per wrap, well past the threshold).
    assert stats["replayed_syscalls"] > 0
    assert stats["measured_syscalls"] >= STEADY_THRESHOLD
    assert stats["replayed_seconds"] > 0


def test_replay_preserves_time_and_accounting():
    """A replayed stream lands on the same clock and byte counters."""
    results = {}
    for ff in (False, True):
        env, machine = _stream_stack(fast_forward=ff)
        reader = machine.spawn("reader")
        drive(env, _read_stream(machine, reader, calls=30))
        results[ff] = (env.now, reader.bytes_read)
    t_off, bytes_off = results[False]
    t_on, bytes_on = results[True]
    assert bytes_on == pytest.approx(bytes_off, rel=1e-9)
    assert t_on == pytest.approx(t_off, rel=1e-6)


def test_replay_preserves_syscall_results():
    env, machine = _stream_stack(fast_forward=True)
    reader = machine.spawn("reader")

    def body():
        handle = yield from machine.open(reader, "/data")
        sizes = []
        offset = 0
        for _ in range(20):
            n = yield from handle.pread(offset, 1 * MB)
            sizes.append(n)
            offset = (offset + n) % handle.inode.size
        return sizes

    sizes = drive(env, body())
    assert sizes == [1 * MB] * 20
    assert machine.fastforward.replayed > 0


def test_overwrite_stream_replays_but_append_never_does():
    """Writes replay only at a cache fixed point (pure dirty overwrite)."""
    env, machine = _stream_stack(fast_forward=True)
    writer = machine.spawn("writer")

    def overwrite():
        handle = yield from machine.open(writer, "/data")
        # Dirty the region once (not a fixed point: pages go
        # clean->dirty), then overwrite it repeatedly (fixed point).
        for _ in range(3):
            offset = 0
            for _ in range(8):
                n = yield from handle.pwrite(offset, 1 * MB)
                offset += n

    drive(env, overwrite())
    assert machine.fastforward.replayed > 0

    env2, machine2 = _stream_stack(fast_forward=True)
    appender = machine2.spawn("appender")

    def append():
        handle = yield from machine2.open(appender, "/data")
        for _ in range(32):
            yield from handle.append(64 * PAGE_SIZE)

    drive(env2, append())
    # Appends grow the file and the cache: never a fixed point.
    assert machine2.fastforward.replayed == 0


# -- drop-back ------------------------------------------------------------


def test_foreign_syscall_drops_stream_back():
    env, machine = _stream_stack(fast_forward=True)
    reader = machine.spawn("reader")
    drive(env, _read_stream(machine, reader, calls=10))
    ff = machine.fastforward
    replayed_before = ff.replayed
    assert replayed_before > 0

    # A transient from another tenant: fsync bumps the disturbance
    # counter, so the very next read must be measured, not replayed.
    other = machine.spawn("other")

    def transient():
        handle = yield from machine.open(other, "/data")
        yield from handle.fsync()

    drive(env, transient())
    measured_before = ff.measured
    drive(env, _read_stream(machine, reader, calls=1))
    assert ff.measured == measured_before + 1
    assert ff.replayed == replayed_before


def test_stream_reearns_replay_after_dropback():
    env, machine = _stream_stack(fast_forward=True)
    reader = machine.spawn("reader")
    drive(env, _read_stream(machine, reader, calls=10))
    ff = machine.fastforward
    ff.disturbance += 1  # any transient
    replayed_before = ff.replayed
    drive(env, _read_stream(machine, reader, calls=STEADY_THRESHOLD + 4))
    # Re-measured through a fresh window, then replayed again.
    assert ff.replayed > replayed_before


def test_interleaved_streams_disturb_each_other():
    env, machine = _stream_stack(fast_forward=True)
    a = machine.spawn("a")
    b = machine.spawn("b")

    def interleaved():
        ha = yield from machine.open(a, "/data")
        hb = yield from machine.open(b, "/data")
        offset = 0
        for _ in range(STEADY_THRESHOLD * 4):
            na = yield from machine.read(a, ha.inode, offset, 1 * MB)
            yield from machine.read(b, hb.inode, offset, 1 * MB)
            offset = (offset + na) % ha.inode.size

    drive(env, interleaved())
    # Every call switches streams, so nothing ever reaches the
    # steady threshold.
    assert machine.fastforward.replayed == 0


def test_write_block_io_disturbs():
    env, machine = _stream_stack(fast_forward=True)
    ff = machine.fastforward
    before = ff.disturbance
    machine.bus.publish(WritebackBatch(env.now, npages=4, reason="background"))
    assert ff.disturbance == before + 1


# -- structural guards ----------------------------------------------------


def test_off_stack_is_inert():
    """fast_forward=False leaves no controller and no bus subscribers."""
    env, machine = _stream_stack(fast_forward=False)
    assert machine.fastforward is None
    assert not machine.bus.listeners(WritebackBatch)


def test_fault_injected_stack_never_gets_a_controller():
    config = StackConfig(
        device="hdd",
        memory_bytes=64 * MB,
        fast_forward=True,
        fault_plan={"read_error_prob": 0.5},
    )
    env, machine = build_stack(config)
    assert machine.fastforward is None


def test_session_default_and_config_pin():
    try:
        common.set_default_fast_forward(True)
        env, machine = build_stack(StackConfig(device="hdd", memory_bytes=64 * MB))
        assert machine.fastforward is not None
        # An explicit config bool overrides the session default.
        env, machine = build_stack(
            StackConfig(device="hdd", memory_bytes=64 * MB, fast_forward=False)
        )
        assert machine.fastforward is None
    finally:
        common.set_default_fast_forward(False)
    env, machine = build_stack(StackConfig(device="hdd", memory_bytes=64 * MB))
    assert machine.fastforward is None


def test_config_roundtrips_fast_forward():
    config = StackConfig(fast_forward=True)
    assert StackConfig.from_dict(config.to_dict()).fast_forward is True
    config = StackConfig()
    assert StackConfig.from_dict(config.to_dict()).fast_forward is None
