"""Cohort dispatch: same-instant events drained and run as one batch.

The run loop hands every event sharing a timestamp to ``_run_cohort``,
which drains them from the heap into a recycled buffer and dispatches
them in one pass.  These tests pin the observable contract: ordering is
exactly what event-at-a-time dispatch produced, same-instant events
scheduled *during* the cohort still run at their proper rank, and a
stop or crash mid-cohort leaves the queue resumable.
"""

import pytest

from repro.sim import Environment
from repro.sim.events import URGENT


def test_cohort_runs_in_schedule_order():
    env = Environment()
    fired = []
    for i in range(50):
        env.timeout(1, value=i).callbacks.append(lambda ev: fired.append(ev.value))
    env.run()
    assert fired == list(range(50))
    assert env.now == 1


def test_event_scheduled_during_cohort_at_same_instant_runs():
    env = Environment()
    fired = []

    def chain(ev):
        fired.append(ev.value)
        if ev.value == 0:
            # Scheduled mid-cohort at the current instant: runs after
            # the already-queued entries (it has a later eid).
            env.timeout(0, value="late").callbacks.append(
                lambda e: fired.append(e.value)
            )

    for i in range(3):
        env.timeout(1, value=i).callbacks.append(chain)
    env.run()
    assert fired == [0, 1, 2, "late"]


def test_urgent_interloper_preempts_cohort_remainder():
    env = Environment()
    fired = []

    def first(ev):
        fired.append(ev.value)
        urgent = env.event()
        urgent.callbacks.append(lambda e: fired.append("urgent"))
        env.schedule(urgent, priority=URGENT)

    env.timeout(1, value="a").callbacks.append(first)
    env.timeout(1, value="b").callbacks.append(lambda ev: fired.append(ev.value))
    env.run()
    # URGENT sorts before the pending NORMAL cohort entry, so it runs
    # between "a" and "b" — exactly as one-at-a-time dispatch would.
    assert fired == ["a", "urgent", "b"]


def test_front_slot_urgent_interloper_preempts_cohort_remainder():
    """A process spawned mid-cohort starts before the cohort remainder.

    Initialize schedules URGENT through the *front slot* (not the
    heap) when the slot is free — which it always is mid-cohort.  The
    interloper check must look there too: missing it delays the
    process start behind every remaining same-instant event, and
    whether the slot is free depends on unrelated traffic elsewhere in
    the Environment (the shard-layout divergence this pins down).
    """
    env = Environment()
    fired = []

    def body():
        fired.append("started")
        return
        yield  # pragma: no cover - makes this a generator

    def spawn(ev):
        fired.append(ev.value)
        env.process(body())

    env.timeout(1, value="a").callbacks.append(spawn)
    env.timeout(1, value="b").callbacks.append(lambda ev: fired.append(ev.value))
    env.run()
    assert fired == ["a", "started", "b"]


def test_heap_and_front_slot_interlopers_run_in_eid_order():
    env = Environment()
    fired = []

    def body():
        fired.append("slot")
        return
        yield  # pragma: no cover - makes this a generator

    def spawn(ev):
        fired.append(ev.value)
        heap_urgent = env.event()
        heap_urgent.callbacks.append(lambda e: fired.append("heap"))
        env.schedule(heap_urgent, priority=URGENT)  # heap path, older eid
        env.process(body())  # front-slot path, younger eid

    env.timeout(1, value="a").callbacks.append(spawn)
    env.timeout(1, value="b").callbacks.append(lambda ev: fired.append(ev.value))
    env.run()
    assert fired == ["a", "heap", "slot", "b"]


def test_until_event_mid_cohort_stops_and_resumes_cleanly():
    env = Environment()
    fired = []
    env.timeout(1, value=0).callbacks.append(lambda ev: fired.append(ev.value))
    stop = env.timeout(1)  # the until-event sits inside the cohort
    env.timeout(1, value=2).callbacks.append(lambda ev: fired.append(ev.value))
    env.timeout(1, value=3).callbacks.append(lambda ev: fired.append(ev.value))
    env.run(until=stop)
    # 0 and the stop trigger ran; 2 and 3 were pushed back.
    assert fired == [0]
    env.run()
    assert fired == [0, 2, 3]
    assert env.now == 1


def test_crashing_callback_mid_cohort_leaves_queue_resumable():
    env = Environment()
    fired = []

    def boom(ev):
        raise RuntimeError("boom")

    env.timeout(1, value=0).callbacks.append(lambda ev: fired.append(ev.value))
    env.timeout(1).callbacks.append(boom)
    env.timeout(1, value=2).callbacks.append(lambda ev: fired.append(ev.value))
    with pytest.raises(RuntimeError, match="boom"):
        env.run()
    assert fired == [0]
    env.run()  # the undispatched remainder survived the crash
    assert fired == [0, 2]


def test_cohort_buffer_is_recycled():
    env = Environment()
    for i in range(10):
        env.timeout(1, value=i)
    env.run()
    buffer = env._cohort
    assert buffer == []
    for i in range(10):
        env.timeout(1, value=i)
    env.run()
    assert env._cohort is buffer  # same list object, reused


def test_nested_run_during_cohort_falls_back_safely():
    """A process calling env.run() re-entrantly must not corrupt the
    in-use cohort buffer (the inner run sees _cohort is None and
    allocates its own)."""
    env = Environment()
    fired = []

    def outer(ev):
        inner = Environment()
        inner.timeout(1, value="inner").callbacks.append(
            lambda e: fired.append(e.value)
        )
        inner.run()
        fired.append(ev.value)

    env.timeout(1, value="a").callbacks.append(outer)
    env.timeout(1, value="b").callbacks.append(lambda ev: fired.append(ev.value))
    env.run()
    assert fired == ["inner", "a", "b"]
