"""Kernel fast path: slots, callback pooling, and lazy cancel sweep.

These pin the memory/allocation discipline the event-loop throughput
benchmark depends on, so a refactor can't silently reintroduce
per-event dict allocations or an O(n) heap removal.
"""

import pytest

from repro.sim import Environment


def test_hot_objects_have_no_instance_dict():
    env = Environment()
    assert not hasattr(env, "__dict__")
    assert not hasattr(env.event(), "__dict__")
    assert not hasattr(env.timeout(1), "__dict__")

    def proc():
        yield env.timeout(1)

    assert not hasattr(env.process(proc()), "__dict__")

    from repro.block.request import BlockRequest
    from repro.cache.page import Page, PageKey
    from repro.proc import Task

    task = Task("w")
    assert not hasattr(BlockRequest("read", 0, 1, task), "__dict__")
    assert not hasattr(Page(PageKey(1, 0), cache=None), "__dict__")


def test_cancelled_timeout_is_swept_not_dispatched():
    env = Environment()
    fired = []

    timer = env.timeout(1, value="timer")
    timer.callbacks.append(lambda ev: fired.append(ev.value))
    keeper = env.timeout(2, value="keeper")
    keeper.callbacks.append(lambda ev: fired.append(ev.value))

    timer.cancel()
    assert timer.callbacks is None  # swept lazily by the run loop
    env.run()
    assert fired == ["keeper"]
    assert env.now == 2  # the cancelled entry was popped and skipped


def test_cancel_is_safe_after_processing():
    env = Environment()
    timer = env.timeout(1)
    env.run()
    timer.cancel()  # no-op on an already-dispatched event
    assert timer.processed is False or timer.callbacks is None


def test_callback_lists_are_pooled_and_reused():
    env = Environment()
    for _ in range(5):
        env.timeout(0)
    env.run()
    assert env._cb_pool, "dispatched events should recycle their callback lists"
    pooled = env._cb_pool[-1]
    event = env.event()
    assert event.callbacks is pooled  # newest event reuses the pooled list
    assert event.callbacks == []


def test_pool_is_bounded():
    from repro.sim.core import _CB_POOL_MAX

    env = Environment()
    for _ in range(_CB_POOL_MAX + 200):
        env.timeout(0)
    env.run()
    assert len(env._cb_pool) <= _CB_POOL_MAX


def test_failed_event_still_raises_through_run():
    env = Environment()
    event = env.event()
    event.fail(RuntimeError("boom"))
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_step_debug_api_still_dispatches_one_event():
    env = Environment()
    seen = []
    first = env.timeout(1)
    first.callbacks.append(lambda ev: seen.append("first"))
    env.timeout(2).callbacks.append(lambda ev: seen.append("second"))
    env.step()
    assert seen == ["first"]
    assert env.now == 1


def test_step_skips_swept_events():
    env = Environment()
    victim = env.timeout(1)
    survivor = env.timeout(2)
    survivor.callbacks.append(lambda ev: None)
    victim.cancel()
    env.step()  # pops the swept entry, dispatches nothing
    assert env.now == 1
    env.step()
    assert env.now == 2
