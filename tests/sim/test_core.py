"""Tests for the simulation environment and event queue."""

import pytest

from repro.sim import Environment


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_starts_at_initial_time():
    env = Environment(initial_time=42.5)
    assert env.now == 42.5


def test_run_until_time_advances_clock():
    env = Environment()
    env.run(until=10)
    assert env.now == 10


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=5)
    with pytest.raises(ValueError):
        env.run(until=4)


def test_run_until_now_is_noop():
    """A zero-length advance returns immediately instead of raising."""
    env = Environment()
    env.run(until=5)
    assert env.run(until=5) is None
    assert env.now == 5
    # The run_for(env, 0.0) idiom from experiments/common.py.
    env.run(until=env.now + 0.0)
    assert env.now == 5


def test_timeout_fires_at_right_time():
    env = Environment()
    times = []

    def proc(env):
        yield env.timeout(3)
        times.append(env.now)
        yield env.timeout(4.5)
        times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [3, 7.5]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeout_carries_value():
    env = Environment()

    def proc(env):
        value = yield env.timeout(1, value="hello")
        return value

    p = env.process(proc(env))
    env.run()
    assert p.value == "hello"


def test_events_process_in_time_order():
    env = Environment()
    order = []

    def proc(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(env, 3, "c"))
    env.process(proc(env, 1, "a"))
    env.process(proc(env, 2, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1)
        order.append(tag)

    for tag in range(5):
        env.process(proc(env, tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2)
        return 99

    p = env.process(proc(env))
    assert env.run(until=p) == 99
    assert env.now == 2


def test_run_until_untriggered_event_raises():
    env = Environment()
    ev = env.event()  # never triggered
    with pytest.raises(RuntimeError):
        env.run(until=ev)


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(5)
    assert env.peek() == 5
    env.run()
    assert env.peek() == float("inf")


def test_event_succeed_once_only():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_event_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_failed_event_propagates_to_process():
    env = Environment()

    def proc(env, ev):
        try:
            yield ev
        except ValueError as exc:
            return str(exc)

    ev = env.event()
    p = env.process(proc(env, ev))
    ev.fail(ValueError("boom"))
    env.run()
    assert p.value == "boom"


def test_unhandled_failed_event_crashes_run():
    env = Environment()
    ev = env.event()
    ev.fail(ValueError("unattended"))
    with pytest.raises(ValueError, match="unattended"):
        env.run()


def test_step_on_empty_queue_raises():
    from repro.sim.core import EmptySchedule

    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()
