"""Tests for processes: waiting, joining, interrupts, failures."""

import pytest

from repro.sim import Environment, Interrupt, Process, ProcessDied


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        Process(env, lambda: None)


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return 42

    p = env.process(proc(env))
    env.run()
    assert p.value == 42
    assert not p.is_alive


def test_process_join():
    env = Environment()

    def child(env):
        yield env.timeout(5)
        return "child-result"

    def parent(env):
        result = yield env.process(child(env))
        return (env.now, result)

    p = env.process(parent(env))
    env.run()
    assert p.value == (5, "child-result")


def test_process_exception_propagates_to_joiner():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        raise RuntimeError("child failed")

    def parent(env):
        try:
            yield env.process(child(env))
        except RuntimeError as exc:
            return f"caught: {exc}"

    p = env.process(parent(env))
    env.run()
    assert p.value == "caught: child failed"


def test_unhandled_process_exception_crashes_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        raise KeyError("oops")

    env.process(proc(env))
    with pytest.raises(KeyError):
        env.run()


def test_interrupt_wakes_sleeping_process():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(100)
            return "slept"
        except Interrupt as interrupt:
            return ("interrupted", env.now, interrupt.cause)

    def waker(env, victim):
        yield env.timeout(3)
        victim.interrupt(cause="wake up")

    victim = env.process(sleeper(env))
    env.process(waker(env, victim))
    env.run()
    assert victim.value == ("interrupted", 3, "wake up")


def test_interrupted_process_can_keep_running():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt:
            pass
        yield env.timeout(2)
        return env.now

    def waker(env, victim):
        yield env.timeout(3)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(waker(env, victim))
    env.run()
    assert victim.value == 5


def test_original_event_does_not_double_resume_after_interrupt():
    env = Environment()
    resumed = []

    def sleeper(env):
        try:
            yield env.timeout(10)
            resumed.append("timeout")
        except Interrupt:
            resumed.append("interrupt")
        yield env.timeout(50)
        resumed.append("second-sleep")

    def waker(env, victim):
        yield env.timeout(1)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(waker(env, victim))
    env.run()
    assert resumed == ["interrupt", "second-sleep"]
    assert victim.value is None


def test_interrupting_dead_process_raises():
    env = Environment()

    def proc(env):
        yield env.timeout(1)

    p = env.process(proc(env))
    env.run()
    with pytest.raises(ProcessDied):
        p.interrupt()


def test_process_cannot_interrupt_itself():
    env = Environment()

    def proc(env):
        with pytest.raises(RuntimeError):
            env.active_process.interrupt()
        yield env.timeout(0)

    env.process(proc(env))
    env.run()


def test_yield_non_event_raises_in_process():
    env = Environment()

    def proc(env):
        yield 42  # type: ignore[misc]

    env.process(proc(env))
    with pytest.raises(TypeError):
        env.run()


def test_active_process_visible_during_execution():
    env = Environment()
    seen = []

    def proc(env):
        seen.append(env.active_process)
        yield env.timeout(1)
        seen.append(env.active_process)

    p = env.process(proc(env))
    env.run()
    assert seen == [p, p]
    assert env.active_process is None


def test_yield_already_processed_event_continues_immediately():
    env = Environment()

    def proc(env):
        ev = env.event()
        ev.succeed("early")
        yield env.timeout(1)  # let the event be processed
        value = yield ev  # already processed: no extra delay
        return (env.now, value)

    p = env.process(proc(env))
    env.run()
    assert p.value == (1, "early")
