"""Edge-case tests for the simulation kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Interrupt, Resource


def test_interrupt_while_waiting_on_resource_releases_cleanly():
    env = Environment()
    res = Resource(env, capacity=1)
    outcome = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def waiter():
        req = res.request()
        try:
            yield req
            outcome.append("acquired")
        except Interrupt:
            req.cancel()
            outcome.append("interrupted")

    def interrupter(victim):
        yield env.timeout(1)
        victim.interrupt()

    env.process(holder())
    victim = env.process(waiter())
    env.process(interrupter(victim))
    env.run()
    assert outcome == ["interrupted"]
    assert not res.queue  # the cancelled request left the queue


def test_condition_with_pre_triggered_events():
    env = Environment()

    def proc():
        done = env.event()
        done.succeed("x")
        yield env.timeout(1)  # let it be processed
        result = yield AllOf(env, [done])
        return result[done]

    p = env.process(proc())
    env.run()
    assert p.value == "x"


def test_run_until_already_processed_event():
    env = Environment()
    ev = env.event()
    ev.succeed(41)
    env.run()  # processes ev
    assert env.run(until=ev) == 41  # returns instantly


def test_nested_anyof_failure_propagates():
    env = Environment()

    def proc():
        bad = env.event()
        good = env.timeout(10)
        bad.fail(RuntimeError("inner"))
        try:
            yield AnyOf(env, [bad, good])
        except RuntimeError as exc:
            return str(exc)

    p = env.process(proc())
    env.run()
    assert p.value == "inner"


def test_process_chain_of_joins():
    env = Environment()

    def leaf():
        yield env.timeout(1)
        return 1

    def middle():
        value = yield env.process(leaf())
        return value + 1

    def root():
        value = yield env.process(middle())
        return value + 1

    p = env.process(root())
    env.run()
    assert p.value == 3


def test_many_simultaneous_processes_complete():
    env = Environment()
    done = []

    def worker(index):
        yield env.timeout(index % 7 * 0.1)
        done.append(index)

    for i in range(500):
        env.process(worker(i))
    env.run()
    assert len(done) == 500


def test_environment_initial_time_offsets_everything():
    env = Environment(initial_time=1000.0)

    def proc():
        yield env.timeout(5)
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 1005.0


def test_event_failure_without_consumer_raises_at_step():
    env = Environment()
    ev = env.event()
    ev.fail(ValueError("nobody listening"))
    with pytest.raises(ValueError):
        env.run()


def test_interrupt_cause_round_trips():
    env = Environment()

    def victim_proc():
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            return interrupt.cause

    def attacker(victim):
        yield env.timeout(1)
        victim.interrupt(cause={"reason": "test"})

    victim = env.process(victim_proc())
    env.process(attacker(victim))
    env.run()
    assert victim.value == {"reason": "test"}
