"""Tests for composite events (AllOf/AnyOf) and RNG streams."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, RandomStreams


def test_allof_waits_for_all():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, "a")
        t2 = env.timeout(5, "b")
        result = yield AllOf(env, [t1, t2])
        return (env.now, result[t1], result[t2])

    p = env.process(proc(env))
    env.run()
    assert p.value == (5, "a", "b")


def test_anyof_returns_on_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, "fast")
        t2 = env.timeout(5, "slow")
        result = yield AnyOf(env, [t1, t2])
        assert t1 in result
        assert t2 not in result
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 1


def test_allof_empty_triggers_immediately():
    env = Environment()

    def proc(env):
        result = yield AllOf(env, [])
        return (env.now, len(result))

    p = env.process(proc(env))
    env.run()
    assert p.value == (0, 0)


def test_condition_value_mapping_protocol():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, "x")
        result = yield AllOf(env, [t1])
        assert len(result) == 1
        assert list(result) == [t1]
        assert result.todict() == {t1: "x"}
        with pytest.raises(KeyError):
            _ = result[env.event()]

    env.process(proc(env))
    env.run()


def test_condition_rejects_foreign_events():
    env1 = Environment()
    env2 = Environment()
    with pytest.raises(ValueError):
        AllOf(env1, [env2.timeout(1)])


def test_allof_propagates_failure():
    env = Environment()

    def proc(env):
        good = env.timeout(1)
        bad = env.event()
        bad.fail(ValueError("bad"))
        try:
            yield AllOf(env, [good, bad])
        except ValueError as exc:
            return str(exc)

    p = env.process(proc(env))
    env.run()
    assert p.value == "bad"


def test_random_streams_deterministic():
    a = RandomStreams(seed=7).stream("disk").random()
    b = RandomStreams(seed=7).stream("disk").random()
    assert a == b


def test_random_streams_independent_by_name():
    streams = RandomStreams(seed=7)
    assert streams["disk"].random() != streams["workload"].random()


def test_random_streams_differ_by_seed():
    a = RandomStreams(seed=1).stream("disk").random()
    b = RandomStreams(seed=2).stream("disk").random()
    assert a != b


def test_random_stream_is_cached():
    streams = RandomStreams()
    assert streams.stream("x") is streams.stream("x")


def test_event_or_operator_waits_for_first():
    env = Environment()

    def proc(env):
        fast = env.timeout(1, "fast")
        slow = env.timeout(9, "slow")
        result = yield fast | slow
        return (env.now, fast in result)

    p = env.process(proc(env))
    env.run()
    assert p.value == (1, True)


def test_event_and_operator_waits_for_both():
    env = Environment()

    def proc(env):
        a = env.timeout(1)
        b = env.timeout(5)
        yield a & b
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 5


def test_operators_chain():
    env = Environment()

    def proc(env):
        a = env.timeout(1)
        b = env.timeout(2)
        c = env.timeout(30)
        yield (a & b) | c
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 2
