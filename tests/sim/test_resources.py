"""Tests for Resource, PriorityResource, Container, and Store."""

import pytest

from repro.sim import Container, Environment, PriorityResource, Resource, Store


def test_resource_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_mutual_exclusion():
    env = Environment()
    res = Resource(env, capacity=1)
    trace = []

    def worker(env, name):
        with res.request() as req:
            yield req
            trace.append((env.now, name, "enter"))
            yield env.timeout(2)
            trace.append((env.now, name, "exit"))

    env.process(worker(env, "a"))
    env.process(worker(env, "b"))
    env.run()
    assert trace == [
        (0, "a", "enter"),
        (2, "a", "exit"),
        (2, "b", "enter"),
        (4, "b", "exit"),
    ]


def test_resource_capacity_two_allows_concurrency():
    env = Environment()
    res = Resource(env, capacity=2)
    enters = []

    def worker(env, name):
        with res.request() as req:
            yield req
            enters.append((env.now, name))
            yield env.timeout(1)

    for name in "abc":
        env.process(worker(env, name))
    env.run()
    assert enters == [(0, "a"), (0, "b"), (1, "c")]


def test_resource_count_tracks_users():
    env = Environment()
    res = Resource(env, capacity=3)

    def worker(env):
        with res.request() as req:
            yield req
            yield env.timeout(1)

    for _ in range(2):
        env.process(worker(env))

    def checker(env):
        yield env.timeout(0.5)
        return res.count

    c = env.process(checker(env))
    env.run()
    assert c.value == 2
    assert res.count == 0


def test_resource_release_without_grant_removes_from_queue():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def impatient(env):
        req = res.request()
        yield env.timeout(1)
        assert not req.triggered
        req.cancel()
        return "gave up"

    env.process(holder(env))
    p = env.process(impatient(env))
    env.run()
    assert p.value == "gave up"
    assert not res.queue


def test_priority_resource_serves_low_priority_value_first():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(5)

    def waiter(env, prio, name, delay):
        yield env.timeout(delay)
        with res.request(priority=prio) as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    env.process(holder(env))
    env.process(waiter(env, 5, "low", 1))
    env.process(waiter(env, 1, "high", 2))
    env.process(waiter(env, 3, "mid", 3))
    env.run()
    assert order == ["high", "mid", "low"]


def test_container_put_get_levels():
    env = Environment()
    tank = Container(env, capacity=100, init=50)

    def proc(env):
        yield tank.get(30)
        assert tank.level == 20
        yield tank.put(60)
        assert tank.level == 80

    env.process(proc(env))
    env.run()
    assert tank.level == 80


def test_container_get_blocks_until_available():
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    times = []

    def getter(env):
        yield tank.get(10)
        times.append(env.now)

    def putter(env):
        yield env.timeout(4)
        yield tank.put(10)

    env.process(getter(env))
    env.process(putter(env))
    env.run()
    assert times == [4]


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    times = []

    def putter(env):
        yield tank.put(5)
        times.append(env.now)

    def getter(env):
        yield env.timeout(3)
        yield tank.get(5)

    env.process(putter(env))
    env.process(getter(env))
    env.run()
    assert times == [3]


def test_container_rejects_bad_amounts():
    env = Environment()
    tank = Container(env, capacity=10, init=5)
    with pytest.raises(ValueError):
        tank.put(0)
    with pytest.raises(ValueError):
        tank.get(-1)
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=11)


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for item in "xyz":
            yield store.put(item)
            yield env.timeout(1)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == ["x", "y", "z"]


def test_store_get_blocks_on_empty():
    env = Environment()
    store = Store(env)
    times = []

    def consumer(env):
        yield store.get()
        times.append(env.now)

    def producer(env):
        yield env.timeout(7)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert times == [7]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer(env):
        yield store.put(1)
        yield store.put(2)
        times.append(env.now)

    def consumer(env):
        yield env.timeout(5)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert times == [5]
