"""Framework wiring details across scheduler kinds."""

from repro import Environment, OS, SSD, MB
from repro.schedulers import CFQ, SCSToken, SplitToken


def test_scs_installs_cfq_elevator_beneath():
    """SCS sits above the stock kernel elevator, as on real Linux."""
    env = Environment()
    machine = OS(env, device=SSD(), scheduler=SCSToken(), memory_bytes=64 * MB)
    assert isinstance(machine.elevator, CFQ)
    assert machine.scheduler is not None  # syscall hooks active


def test_split_scheduler_is_both_hooks_and_elevator():
    env = Environment()
    split = SplitToken()
    machine = OS(env, device=SSD(), scheduler=split, memory_bytes=64 * MB)
    assert machine.elevator is split
    assert machine.cache.buffer_dirty_hook is not None


def test_framework_object_tracks_installed_scheduler():
    env = Environment()
    split = SplitToken()
    machine = OS(env, device=SSD(), scheduler=split, memory_bytes=64 * MB)
    assert machine.framework.scheduler is split
