"""Tests for cause sets and proxy tracking (paper §3.1/§4.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.tags import CauseSet, TagManager
from repro.proc import Task


def test_cause_set_of_tasks():
    a, b = Task("a"), Task("b")
    causes = CauseSet.of(a, b)
    assert a in causes
    assert b in causes
    assert len(causes) == 2


def test_cause_set_union():
    one = CauseSet([1, 2])
    two = CauseSet([2, 3])
    assert (one | two) == CauseSet([1, 2, 3])


def test_cause_set_is_immutable_value():
    causes = CauseSet([1])
    union = causes | CauseSet([2])
    assert causes == CauseSet([1])  # original untouched
    assert union != causes


def test_cause_set_hashable():
    assert hash(CauseSet([1, 2])) == hash(CauseSet([2, 1]))
    assert {CauseSet([1]): "x"}[CauseSet([1])] == "x"


def test_empty_cause_set_is_falsy():
    assert not CauseSet()
    assert CauseSet([1])


@given(st.sets(st.integers(min_value=1, max_value=1000)), st.sets(st.integers(min_value=1, max_value=1000)))
def test_union_is_commutative_and_idempotent(a, b):
    x, y = CauseSet(a), CauseSet(b)
    assert (x | y) == (y | x)
    assert (x | x) == x


def test_current_causes_defaults_to_self():
    tags = TagManager()
    task = Task("app")
    assert tags.current_causes(task) == CauseSet([task.pid])


def test_proxy_redirects_causes():
    """Figure 7: pages dirtied by a proxy map to the tasks it serves."""
    tags = TagManager()
    p1, p2, p3 = Task("p1"), Task("p2"), Task("p3-writeback", kernel=True)
    served = CauseSet.of(p1, p2)
    tags.set_proxy(p3, served)
    assert tags.is_proxy(p3)
    assert tags.current_causes(p3) == served
    tags.clear_proxy(p3)
    assert not tags.is_proxy(p3)
    assert tags.current_causes(p3) == CauseSet([p3.pid])


def test_proxy_causes_can_grow():
    tags = TagManager()
    journal, a, b = Task("jbd2", kernel=True), Task("a"), Task("b")
    tags.set_proxy(journal, CauseSet.of(a))
    tags.add_proxy_causes(journal, CauseSet.of(b))
    assert tags.current_causes(journal) == CauseSet.of(a, b)


def test_set_proxy_requires_cause_set():
    tags = TagManager()
    with pytest.raises(TypeError):
        tags.set_proxy(Task("t"), {1, 2})


def test_tag_accounting_tracks_bytes():
    tags = TagManager()
    page = object()
    tags.account_tag(page, CauseSet([1, 2]))
    expected = TagManager.TAG_OVERHEAD_BASE + 2 * TagManager.TAG_OVERHEAD_PER_PID
    assert tags.bytes_allocated == expected
    assert tags.live_tags == 1
    tags.release_tag(page)
    assert tags.bytes_allocated == 0
    assert tags.live_tags == 0


def test_tag_accounting_replaces_not_accumulates():
    tags = TagManager()
    page = object()
    tags.account_tag(page, CauseSet([1]))
    tags.account_tag(page, CauseSet([1, 2, 3]))
    expected = TagManager.TAG_OVERHEAD_BASE + 3 * TagManager.TAG_OVERHEAD_PER_PID
    assert tags.bytes_allocated == expected
    assert tags.live_tags == 1


def test_tag_accounting_peak_watermark():
    tags = TagManager()
    pages = [object() for _ in range(5)]
    for page in pages:
        tags.account_tag(page, CauseSet([1]))
    peak = tags.bytes_allocated
    for page in pages:
        tags.release_tag(page)
    assert tags.max_bytes_allocated == peak
    assert tags.bytes_allocated == 0


def test_release_unknown_tag_is_noop():
    tags = TagManager()
    tags.release_tag(object())
    assert tags.bytes_allocated == 0
