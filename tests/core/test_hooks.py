"""Tests for the split hook table (Table 2) and hook base classes."""

import pytest

from repro.core.hooks import SPLIT_HOOK_TABLE, SYSCALL_HOOKS, SchedulerHooks, SplitScheduler
from repro.core.framework import FRAMEWORK_PROPERTIES, SplitFramework
from repro.proc import Task


def test_hook_table_covers_three_levels():
    levels = {level for level, _ in SPLIT_HOOK_TABLE.values()}
    assert levels == {"syscall", "memory", "block"}


def test_hook_table_matches_paper_inventory():
    """Table 2: which hooks are new and which are borrowed."""
    # Write interception is borrowed from SCS.
    assert SPLIT_HOOK_TABLE["write_entry"] == ("syscall", "SCS")
    # fsync and metadata-call scheduling are new in the split framework.
    assert SPLIT_HOOK_TABLE["fsync_entry"][1] == "new"
    assert SPLIT_HOOK_TABLE["creat_entry"][1] == "new"
    assert SPLIT_HOOK_TABLE["mkdir_entry"][1] == "new"
    # The memory-level hooks are the paper's novel contribution.
    assert SPLIT_HOOK_TABLE["buffer_dirty"] == ("memory", "new")
    assert SPLIT_HOOK_TABLE["buffer_free"] == ("memory", "new")
    # Block hooks come from the stock elevator framework.
    for name in ("block_add", "block_dispatch", "block_complete"):
        assert SPLIT_HOOK_TABLE[name][1] == "elevator"


def test_reads_are_exposed_but_not_split_scheduled():
    """The split framework exposes read syscalls (SCS needs them) but
    schedules reads below the cache; the table has no read entry."""
    assert "read" in SYSCALL_HOOKS
    assert "read_entry" not in SPLIT_HOOK_TABLE


def test_default_hooks_are_noops():
    hooks = SchedulerHooks()
    task = Task("t")
    assert hooks.syscall_entry(task, "write", {}) is None
    hooks.syscall_return(task, "write", {})  # must not raise
    hooks.on_buffer_dirty(None, None)
    hooks.on_buffer_free(None)


def test_default_elevator_is_noop():
    from repro.schedulers.noop import Noop

    assert isinstance(SchedulerHooks().make_elevator(), Noop)


def test_split_scheduler_is_its_own_elevator():
    class Minimal(SplitScheduler):
        def add_request(self, request):
            pass

        def next_request(self):
            return None

        def has_work(self):
            return False

    scheduler = Minimal()
    assert scheduler.make_elevator() is scheduler


def test_framework_properties_table():
    assert SplitFramework.properties("split") == {
        "cause_mapping": True,
        "cost_estimation": True,
        "reordering": True,
    }
    assert not SplitFramework.properties("block")["cause_mapping"]
    assert not SplitFramework.properties("syscall")["cost_estimation"]
    with pytest.raises(ValueError):
        SplitFramework.properties("userspace")


def test_properties_returns_copies():
    row = SplitFramework.properties("split")
    row["cause_mapping"] = False
    assert FRAMEWORK_PROPERTIES["split"]["cause_mapping"] is True
