"""Tests for the two-stage cost models (§3.2)."""

import pytest

from repro.block.request import BlockRequest, READ, WRITE
from repro.cache.cache import PageCache
from repro.cache.page import PageKey
from repro.core.costmodel import DiskCostModel, MemoryCostModel
from repro.core.tags import TagManager
from repro.devices import HDD, SSD
from repro.proc import Task
from repro.sim import Environment
from repro.units import MB, PAGE_SIZE


def make_page(inode_id, index):
    env = Environment()
    cache = PageCache(env, TagManager(), memory_bytes=16 * MB)
    return cache.mark_dirty(PageKey(inode_id, index), Task("t"))


def test_memory_model_sequential_writes_cheap():
    model = MemoryCostModel()
    costs = [model.estimate(make_page(1, index)) for index in range(5)]
    assert all(cost == PAGE_SIZE for cost in costs)


def test_memory_model_random_writes_penalized():
    model = MemoryCostModel(random_penalty=10)
    model.estimate(make_page(1, 0))
    cost = model.estimate(make_page(1, 5000))  # big jump in the file
    assert cost == 10 * PAGE_SIZE


def test_memory_model_overwrite_of_previous_page_is_sequential():
    model = MemoryCostModel()
    model.estimate(make_page(1, 10))
    # Writing index 10 again (expected_next is 11; 10 == 11 - 1).
    assert model.estimate(make_page(1, 10)) == PAGE_SIZE


def test_memory_model_per_file_tracking():
    model = MemoryCostModel()
    model.estimate(make_page(1, 0))
    model.estimate(make_page(2, 9000))  # different file: fresh detector
    assert model.estimate(make_page(1, 1)) == PAGE_SIZE


def test_disk_model_normalizes_by_sequential_rate():
    disk = HDD()
    model = DiskCostModel(disk)
    request = BlockRequest(READ, 0, 1, Task("t"))
    # A request that took 10 ms on a 110 MB/s disk = ~1.1 MB equivalent.
    cost = model.normalized_bytes(request, duration=0.01)
    assert cost == pytest.approx(0.01 * disk.transfer_rate)


def test_disk_model_sequential_io_costs_its_bytes():
    disk = HDD()
    model = DiskCostModel(disk)
    nbytes = 1 * MB
    duration = nbytes / disk.transfer_rate
    request = BlockRequest(WRITE, 0, 256, Task("t"))
    assert model.normalized_bytes(request, duration) == pytest.approx(nbytes, rel=0.01)


def test_disk_model_zero_duration_falls_back_to_bytes():
    model = DiskCostModel(SSD())
    request = BlockRequest(READ, 0, 2, Task("t"))
    assert model.normalized_bytes(request, 0.0) == request.nbytes


def test_revision_is_actual_minus_preliminary():
    model = DiskCostModel(HDD())
    request = BlockRequest(WRITE, 0, 1, Task("t"))
    actual = model.normalized_bytes(request, 0.01)
    assert model.revision(request, 0.01, preliminary=1000.0) == pytest.approx(actual - 1000.0)


def test_disk_model_uses_ssd_read_bandwidth():
    ssd = SSD()
    model = DiskCostModel(ssd)
    assert model.sequential_rate == ssd.read_bandwidth
